"""Fail-closed serving infrastructure (robustness layer).

An online auditor is only private if it never forgets what it has disclosed
and never answers under uncertainty.  This package supplies the three pieces
of that guarantee:

* :mod:`repro.resilience.wal` — a crash-safe write-ahead audit log: every
  decision is durably persisted (fsync-per-record, checksummed) *before*
  its answer is released, and recovery replays the log through the journal
  restore path;
* :mod:`repro.resilience.budget` — per-query deadlines and resource
  budgets with cooperative cancellation inside the MCMC samplers, bounded
  deterministic retry-and-reseed on :class:`~repro.exceptions.SamplingError`,
  and a fail-closed fallback denial
  (:attr:`~repro.types.DenialReason.RESOURCE_EXHAUSTED`);
* :mod:`repro.resilience.faults` — a deterministic fault-injection harness
  driving the crash/recover/replay test suite that proves every failure
  mode degrades to *deny*, never to *answer*.

See ``docs/ROBUSTNESS.md`` for the design.
"""

from typing import Any

from .budget import Budget, BudgetScope, run_fail_closed
from .faults import (
    Crash,
    FaultClock,
    FaultPlan,
    InjectedCrash,
    KNOWN_SITES,
    Raise,
    Stall,
    fault_site,
    inject,
)
from .overload import (
    AdmissionController,
    AdmissionPolicy,
    CircuitBreaker,
    TokenBucket,
)

#: WAL and checkpoint names are exported lazily (PEP 562):
#: ``repro.persistence`` imports this package for the fault sites, while
#: ``.wal``/``.checkpoint`` import ``repro.persistence`` for the journal
#: types — eager re-export here would close that cycle during interpreter
#: start-up.
_WAL_EXPORTS = ("WriteAheadLog", "open_wal_auditor", "recover_journaled")
_CHECKPOINT_EXPORTS = (
    "CheckpointPolicy",
    "CheckpointedWal",
    "RecoveryInfo",
    "open_checkpointed_auditor",
)
_REPLICATION_EXPORTS = (
    "FencedError",
    "Follower",
    "FollowerReadOnlyAuditor",
    "FrameDecoder",
    "LocalLink",
    "ProcessLink",
    "ReplicatingWal",
    "ReplicationError",
    "open_replicated_auditor",
    "promote_replica",
    "replica_events",
)


def __getattr__(name: str) -> Any:
    if name in _WAL_EXPORTS:
        from . import wal

        return getattr(wal, name)
    if name in _CHECKPOINT_EXPORTS:
        from . import checkpoint

        return getattr(checkpoint, name)
    if name in _REPLICATION_EXPORTS:
        from . import replication

        return getattr(replication, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "Budget",
    "BudgetScope",
    "CheckpointPolicy",
    "CheckpointedWal",
    "CircuitBreaker",
    "Crash",
    "FaultClock",
    "FaultPlan",
    "FencedError",
    "Follower",
    "FollowerReadOnlyAuditor",
    "FrameDecoder",
    "InjectedCrash",
    "KNOWN_SITES",
    "LocalLink",
    "ProcessLink",
    "Raise",
    "RecoveryInfo",
    "ReplicatingWal",
    "ReplicationError",
    "Stall",
    "TokenBucket",
    "WriteAheadLog",
    "fault_site",
    "inject",
    "open_checkpointed_auditor",
    "open_replicated_auditor",
    "open_wal_auditor",
    "promote_replica",
    "recover_journaled",
    "replica_events",
    "run_fail_closed",
]
