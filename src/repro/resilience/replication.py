"""Primary/follower WAL replication with snapshot-install failover.

A lost or diverged audit history silently voids the simulatability
guarantee, so the decision stream itself must survive machine failure.
This module replicates the :class:`~repro.resilience.checkpoint.
CheckpointedWal` decision stream to N followers and makes any follower
promotable:

* the **primary** (:class:`ReplicatingWal`) ships every durable record,
  and every checkpoint snapshot, to its attached links over a
  length-prefixed, CRC-checksummed frame protocol — *synchronously*: an
  answer is released only after the record is fsynced locally **and**
  acknowledged by every attached follower, extending the single-node
  fail-closed contract ("released ⇒ durable") to "released ⇒ durable on
  the whole replica set";
* a **follower** (:class:`Follower`) applies the shipped record bytes
  verbatim into its own valid checkpointed-WAL directory (a bitwise
  replica of the primary's record stream) and folds each event through
  the re-audit-free journal replay path, so it can serve read-only audit
  history and cached decisions (:class:`FollowerReadOnlyAuditor`)
  without ever consulting the sensitive data or re-running an auditor;
* **failover** is snapshot-install: a follower that detects a stale or
  dead primary recovers from its replica directory (newest committed
  snapshot + replayed suffix, the ordinary recovery state machine) and
  is promoted by durably bumping the **fencing epoch** in its MANIFEST.
  Every frame carries the sender's epoch; a receiver rejects any frame
  from an older epoch with :class:`FencedError`, so a resurrected old
  primary's appends are refused — split-brain writes cannot merge into
  the audit history.

Followers run in-process (:class:`LocalLink`, used by the test harness
and read replicas) or as real spawned processes (:class:`ProcessLink`,
used by the ``serve`` CLI).  Process followers receive only a directory
path and a pipe — never a live handle — per the FORK fail-closed rules.

Because decision replay is re-audit-free and deterministic, a client
retrying a query against a promoted follower gets the original decision
replayed from the cache/journal, never a second independent audit.

Crash-atomicity is proven, not asserted: the cross-boundary chaos sweep
in ``tests/resilience/test_replication_chaos.py`` kills primary or
follower at every instrumented fault site and checks the surviving
stream is bitwise-identical to the fault-free run.
"""

from __future__ import annotations

import base64
import json
import multiprocessing
import os
import struct
import time
import zlib
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..persistence import (
    JournalError,
    JournaledAuditor,
    _journalled_reason,
    replay_events,
)
from ..sdb.dataset import Dataset
from ..types import (
    AggregateKind,
    AuditDecision,
    AuditTrail,
    DenialReason,
    Query,
)
from .checkpoint import (
    MANIFEST_NAME,
    CheckpointPolicy,
    CheckpointedWal,
    RecoveryInfo,
    _read_manifest,
    open_checkpointed_auditor,
)
from .faults import fault_site
from .wal import AuditorFactory, WriteAheadLog, _decode_record, _encode_record

# ----------------------------------------------------------------------
# Frame protocol
# ----------------------------------------------------------------------

#: Frame header: magic, frame type, payload length, payload crc32.
FRAME_MAGIC = b"RWAL"
FRAME_HEADER = struct.Struct(">4sBII")
PROTOCOL_VERSION = 1

FRAME_HELLO = 1       #: heartbeat / epoch probe (no state change)
FRAME_SYNC = 2        #: full snapshot-install (attach / re-sync)
FRAME_APPEND = 3      #: one durable journal record, verbatim bytes
FRAME_CHECKPOINT = 4  #: a sealed checkpoint: snapshot + rotation
FRAME_ACK = 5         #: follower acknowledgement

#: Upper bound on a single frame's payload; a length field beyond this is
#: stream corruption, not a real frame.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class ReplicationError(JournalError):
    """The replication stream is damaged, lagging, or refused."""


class FencedError(ReplicationError):
    """A frame from a fenced (superseded) epoch was rejected.

    Raised on the *sender's* side of :meth:`ReplicatingWal.append` too:
    a fenced primary's in-flight answer is never released.
    """


def encode_frame(frame_type: int, payload: Mapping[str, Any]) -> bytes:
    """Frame ``payload`` as header + CRC-checked JSON body."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return FRAME_HEADER.pack(FRAME_MAGIC, frame_type, len(body), crc) + body


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    ``feed`` buffers partial frames across calls (a ship may arrive torn
    at any byte offset) and yields only frames whose full body arrived
    and passed its CRC; damage raises :class:`ReplicationError` without
    yielding the damaged frame.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of their frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Tuple[int, Dict[str, Any]]]:
        """Consume ``data``; return every newly completed frame."""
        self._buffer.extend(data)
        frames: List[Tuple[int, Dict[str, Any]]] = []
        while len(self._buffer) >= FRAME_HEADER.size:
            magic, ftype, length, crc = FRAME_HEADER.unpack_from(
                self._buffer, 0)
            if magic != FRAME_MAGIC:
                raise ReplicationError(
                    f"replication stream lost framing (magic {magic!r}); "
                    f"the connection must be re-synced"
                )
            if length > MAX_FRAME_BYTES:
                raise ReplicationError(
                    f"replication frame claims {length} bytes "
                    f"(max {MAX_FRAME_BYTES}); stream corruption"
                )
            if len(self._buffer) < FRAME_HEADER.size + length:
                break  # torn mid-frame: wait for the rest
            body = bytes(self._buffer[FRAME_HEADER.size:
                                      FRAME_HEADER.size + length])
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                raise ReplicationError(
                    f"replication frame failed its checksum "
                    f"(type {ftype}, {length} bytes); stream corruption"
                )
            del self._buffer[:FRAME_HEADER.size + length]
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ReplicationError(
                    f"replication frame body is not valid JSON ({exc})"
                ) from exc
            if not isinstance(payload, dict):
                raise ReplicationError(
                    "replication frame payload is not an object")
            frames.append((ftype, payload))
        return frames


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: Any) -> bytes:
    try:
        return base64.b64decode(str(text), validate=True)
    except (ValueError, TypeError) as exc:
        raise ReplicationError(
            f"replication frame carries undecodable data ({exc})"
        ) from exc


# ----------------------------------------------------------------------
# Follower
# ----------------------------------------------------------------------

class Follower:
    """A replica applying the primary's shipped decision stream.

    The follower's directory is itself a valid checkpointed WAL: shipped
    records are appended verbatim (bitwise-identical segment bytes) and
    shipped snapshots are installed through the same crash-atomic
    seal/rotate/commit sequence the primary uses.  Promotion is therefore
    just ordinary recovery on the replica directory plus a fencing-epoch
    bump — see :func:`promote_replica`.

    With an ``auditor_factory`` the follower also maintains a *live*
    replayed auditor (re-audit-free fold of each event) and a decision
    cache for read-only serving; without one (the process-follower
    default) it is a pure durability replica.

    ``clock`` (default ``time.monotonic``) timestamps frame arrivals so
    :meth:`primary_stale` can drive failover decisions.
    """

    def __init__(self, directory: str,
                 auditor_factory: Optional[AuditorFactory] = None,
                 policy: Optional[CheckpointPolicy] = None,
                 fsync: bool = True,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.directory = directory
        self._factory = auditor_factory
        self._policy = policy
        self._fsync = fsync
        self._clock = clock
        self._wal: Optional[CheckpointedWal] = None
        self._auditor: Any = None
        self._dataset: Optional[Dataset] = None
        self._decisions: Dict[Tuple[AggregateKind, frozenset],
                              AuditDecision] = {}
        self._epoch = 0
        self._promoted = False
        self._decoder = FrameDecoder()
        self.last_contact: Optional[float] = None

    @classmethod
    def open(cls, directory: str,
             auditor_factory: Optional[AuditorFactory] = None,
             policy: Optional[CheckpointPolicy] = None,
             fsync: bool = True,
             clock: Callable[[], float] = time.monotonic) -> "Follower":
        """Open a replica directory (fresh, or resuming after a crash)."""
        os.makedirs(directory, exist_ok=True)
        follower = cls(directory, auditor_factory=auditor_factory,
                       policy=policy, fsync=fsync, clock=clock)
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            follower._reopen()
        return follower

    # -- state ----------------------------------------------------------

    @property
    def total_events(self) -> int:
        """Durable events this replica holds (0 before the first sync)."""
        return self._wal.total_events if self._wal is not None else 0

    @property
    def epoch(self) -> int:
        """The fencing epoch this replica last durably adopted."""
        return self._epoch

    @property
    def promoted(self) -> bool:
        """Whether this follower was promoted (it now refuses frames)."""
        return self._promoted

    @property
    def dataset_header(self) -> Optional[Dict[str, Any]]:
        """The replicated stream's initial dataset (values/low/high)."""
        if self._wal is None:
            return None
        return dict(self._wal._dataset_header)

    @property
    def live_dataset(self) -> Optional[Dataset]:
        """The replayed dataset (``None`` without an auditor factory)."""
        return self._dataset

    @property
    def history(self) -> Optional[AuditTrail]:
        """The replayed audit trail (``None`` without a factory)."""
        auditor = self._auditor
        return auditor.trail if auditor is not None else None

    def decision_for(self, query: Query) -> Optional[AuditDecision]:
        """The replicated decision for ``query``, if one was released."""
        return self._decisions.get((query.kind, query.query_set))

    def primary_stale(self, timeout: float) -> bool:
        """Whether the primary has been silent longer than ``timeout``.

        A follower that has never heard from a primary reports stale —
        the conservative reading for a failover decision.
        """
        if self.last_contact is None:
            return True
        return (self._clock() - self.last_contact) > float(timeout)

    def close(self) -> None:
        """Close the replica's active segment handle."""
        if self._wal is not None:
            self._wal.close()

    # -- frame application ---------------------------------------------

    def feed(self, data: bytes) -> List[bytes]:
        """Apply a raw byte chunk; return one encoded ACK per frame.

        The byte-stream entry point used by process followers; partial
        frames buffer until their remainder arrives.
        """
        acks = []
        for ftype, payload in self._decoder.feed(data):
            acks.append(encode_frame(FRAME_ACK,
                                     self.apply_frame(ftype, payload)))
        return acks

    def apply_frame(self, frame_type: int,
                    payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Apply one decoded frame; return the ACK payload.

        Raises :class:`FencedError` for frames from a superseded epoch
        and :class:`ReplicationError` for damaged or out-of-order ships —
        in both cases the replica stays at its last committed state.
        """
        self.last_contact = self._clock()
        try:
            if frame_type == FRAME_HELLO:
                self._check_epoch(payload)
            elif frame_type == FRAME_SYNC:
                self._apply_sync(payload)
            elif frame_type == FRAME_APPEND:
                self._apply_append(payload)
            elif frame_type == FRAME_CHECKPOINT:
                self._apply_checkpoint(payload)
            else:
                raise ReplicationError(
                    f"unexpected replication frame type {frame_type}")
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplicationError(
                f"malformed replication frame (type {frame_type}): {exc}"
            ) from exc
        if frame_type in (FRAME_SYNC, FRAME_APPEND, FRAME_CHECKPOINT):
            fault_site("ship.pre-ack")
        return {"type": "ack", "events": self.total_events,
                "epoch": self._epoch}

    # -- promotion ------------------------------------------------------

    def promote(self, verify: bool = False
                ) -> Tuple[JournaledAuditor, Dataset, RecoveryInfo]:
        """Fail over to this replica: recover its directory and fence.

        Returns the promoted ``(auditor, dataset, recovery_info)`` —
        a fully writable primary (a :class:`ReplicatingWal` with no
        links yet; attach fresh followers to re-establish redundancy).
        After the fence commits, the old primary's epoch is dead: any
        frame it ships here (or to a re-opened replica of this
        directory) raises :class:`FencedError`.
        """
        if self._factory is None:
            raise ReplicationError(
                "promotion requires an auditor factory to rebuild the "
                "live auditor from the replica's snapshot + suffix"
            )
        if self._wal is None:
            raise ReplicationError(
                f"replica {self.directory!r} holds no replicated state "
                f"to promote; it was never synced"
            )
        # Refuse further frames immediately: even before the durable
        # fence commits, this follower has left the old primary's
        # replica set.
        self._promoted = True
        self.close()
        wrapped, dataset, info = promote_replica(
            self.directory, self._factory, policy=self._policy,
            fsync=self._fsync, verify=verify,
        )
        self._epoch = wrapped.wal.epoch
        return wrapped, dataset, info

    # -- internals ------------------------------------------------------

    def _check_epoch(self, payload: Mapping[str, Any]) -> None:
        epoch = int(payload.get("epoch", 0))
        if self._promoted or epoch < self._epoch:
            raise FencedError(
                f"rejecting frame from epoch {epoch}: replica "
                f"{self.directory!r} is fenced at epoch {self._epoch}"
                + (" (promoted)" if self._promoted else "")
            )
        if epoch > self._epoch:
            # A legitimately newer primary (post-failover): adopt its
            # epoch.  It becomes durable with the next manifest commit.
            self._epoch = epoch
            if self._wal is not None:
                self._wal._epoch = epoch

    def _apply_append(self, payload: Mapping[str, Any]) -> None:
        self._check_epoch(payload)
        if self._wal is None:
            raise ReplicationError(
                f"replica {self.directory!r} has no installed state; "
                f"the primary must sync before shipping appends"
            )
        seq = int(payload["seq"])
        if seq != self._wal.total_events:
            raise ReplicationError(
                f"append frame for event {seq} but replica "
                f"{self.directory!r} holds {self._wal.total_events} "
                f"events; stream gap — a full re-sync is required"
            )
        data = _unb64(payload["data"])
        if not data.endswith(b"\n"):
            raise ReplicationError(
                f"shipped record {seq} is not newline-terminated; "
                f"torn or corrupt ship"
            )
        try:
            # Re-validate the record's own CRC before any byte lands in
            # the replica segment: a ship corrupted before framing must
            # leave the replica at its last committed state.
            event = _decode_record(data.rstrip(b"\n"), seq)
        except ValueError as exc:
            raise ReplicationError(
                f"shipped record {seq} failed its checksum ({exc}); "
                f"replica stays at its last committed state"
            ) from exc
        self._wal.raw_append(data)
        if self._auditor is not None:
            replay_events(self._auditor, self._dataset, [event])
            self._cache_decision(event)

    def _apply_checkpoint(self, payload: Mapping[str, Any]) -> None:
        self._check_epoch(payload)
        if self._wal is None:
            raise ReplicationError(
                f"replica {self.directory!r} has no installed state; "
                f"the primary must sync before shipping checkpoints"
            )
        seq = int(payload["seq"])
        events = int(payload["events"])
        snap_name = str(payload["snapshot"])
        data = _unb64(payload["data"])
        try:
            record = _decode_record(data.rstrip(b"\n"), 0)
        except ValueError as exc:
            raise ReplicationError(
                f"shipped snapshot {snap_name} failed its checksum "
                f"({exc}); replica stays at its last committed state"
            ) from exc
        if record.get("type") != "snapshot":
            raise ReplicationError(
                f"shipped snapshot {snap_name} is not a snapshot record "
                f"(got type {record.get('type')!r})"
            )
        self._wal.install_checkpoint(seq, snap_name, events, data)

    def _apply_sync(self, payload: Mapping[str, Any]) -> None:
        self._check_epoch(payload)
        events = int(payload["events"])
        if self._wal is not None and self._wal.total_events > events:
            raise ReplicationError(
                f"replica {self.directory!r} holds "
                f"{self._wal.total_events} events but the primary ships "
                f"{events}; refusing to rewind replicated audit history"
            )
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        # The shipped state supersedes whatever partial replica is on
        # disk (the primary is never behind a live replica — checked
        # above).  NOTE: between this wipe and the manifest commit below
        # the replica is not a durable copy; operators should re-sync
        # one replica at a time.
        for name in sorted(os.listdir(self.directory)):
            if (name == MANIFEST_NAME or name.endswith(".tmp")
                    or name.startswith(("segment-", "snapshot-"))):
                os.unlink(os.path.join(self.directory, name))
        wal = CheckpointedWal(self.directory, policy=self._policy,
                              fsync=self._fsync)
        header = payload["dataset"]
        wal._dataset_header = {
            "values": [float(v) for v in header["values"]],
            "low": float(header["low"]),
            "high": float(header["high"]),
        }
        wal._segments = [
            {"name": str(seg["name"]), "base": int(seg["base"]),
             "count": None if seg["count"] is None else int(seg["count"])}
            for seg in payload["segments"]
        ]
        wal._snapshots = [
            {"name": str(snap["name"]), "events": int(snap["events"])}
            for snap in payload["snapshots"]
        ]
        wal._next_seq = int(payload["next_seq"])
        wal._epoch = int(payload.get("epoch", 0))
        for seg in payload["segments"]:
            wal._write_file_atomic(str(seg["name"]), _unb64(seg["data"]))
        for snap in payload["snapshots"]:
            data = _unb64(snap["data"])
            try:
                record = _decode_record(data.rstrip(b"\n"), 0)
            except ValueError as exc:
                raise ReplicationError(
                    f"synced snapshot {snap['name']} failed its "
                    f"checksum ({exc})"
                ) from exc
            if record.get("type") != "snapshot":
                raise ReplicationError(
                    f"synced snapshot {snap['name']} is not a snapshot "
                    f"record"
                )
            wal._write_file_atomic(str(snap["name"]), data,
                                   mid_site="install.mid-snapshot")
        # The manifest commit is the install's atomic switch point: a
        # crash before it leaves an unreferenced (or empty) directory
        # that the next sync simply overwrites.
        wal._commit_manifest()
        self._reopen()

    def _reopen(self) -> None:
        """Rebuild in-memory state from the replica directory."""
        if self._factory is not None:
            wrapped, dataset, _info = CheckpointedWal.recover(
                self.directory, self._factory, policy=self._policy,
                fsync=self._fsync,
            )
            self._wal = wrapped.wal
            self._auditor = wrapped.auditor
            self._dataset = dataset
        else:
            # Pure durability replica: parse the directory without
            # rebuilding an auditor (recovery's full-replay fallback
            # would need the factory we don't have).
            wal = CheckpointedWal(self.directory, policy=self._policy,
                                  fsync=self._fsync)
            wal._load_manifest(_read_manifest(self.directory))
            seg_records, _torn = wal._read_segments()
            last = wal._segments[-1]
            wal._total_events = (int(last["base"])
                                 + len(seg_records[str(last["name"])]))
            wal._last_snapshot_events = (
                int(wal._snapshots[-1]["events"]) if wal._snapshots else 0)
            wal._sweep_orphans()
            wal._open_active()
            self._wal = wal
            self._auditor = None
            self._dataset = None
        self._epoch = self._wal.epoch
        self._decisions = {}
        trail = self.history
        if trail is not None:
            for event in trail.events:
                self._decisions[(event.query.kind,
                                 event.query.query_set)] = event.decision

    def _cache_decision(self, event: Mapping[str, Any]) -> None:
        if event.get("type") not in ("query", "query_replay"):
            return
        query = Query(AggregateKind(event["kind"]),
                      frozenset(int(i) for i in event["members"]))
        if event.get("denied"):
            decision = AuditDecision.deny(_journalled_reason(dict(event)),
                                          "replicated")
        else:
            decision = AuditDecision.answer(float(event["value"]))
        self._decisions[(query.kind, query.query_set)] = decision


def promote_replica(directory: str, auditor_factory: AuditorFactory,
                    policy: Optional[CheckpointPolicy] = None,
                    fsync: bool = True, verify: bool = False,
                    ) -> Tuple[JournaledAuditor, Dataset, RecoveryInfo]:
    """Fail over to the replica at ``directory``: recover, then fence.

    Snapshot-install failover is ordinary recovery — the replica
    directory is a valid checkpointed WAL, so the newest committed
    snapshot plus the replayed suffix reconstructs the exact audit state
    the primary had released — followed by a durable fencing-epoch bump.
    A crash between the two (fault site ``promote.pre-fence``) leaves
    the epoch unbumped and promotion simply retries.
    """
    wrapped, dataset, info = ReplicatingWal.recover(
        directory, auditor_factory, policy=policy, fsync=fsync,
        verify=verify,
    )
    fault_site("promote.pre-fence")
    wrapped.wal.fence()
    return wrapped, dataset, info


def replica_events(directory: str) -> List[Dict[str, Any]]:
    """Read-only parse of every durable event a WAL directory holds.

    Used by tests and benchmarks to compare a primary's and a replica's
    decision streams without mutating either (a torn tail is ignored,
    not healed).
    """
    wal = CheckpointedWal(directory)
    wal._load_manifest(_read_manifest(directory))
    events: List[Dict[str, Any]] = []
    for seg in wal._segments:
        path = os.path.join(directory, str(seg["name"]))
        with open(path, "rb") as handle:
            raw = handle.read()
        records, _good = WriteAheadLog._parse(raw, path)
        events.extend(records)
    return events


# ----------------------------------------------------------------------
# Links
# ----------------------------------------------------------------------

class LocalLink:
    """An in-process link to a :class:`Follower` (tests, read replicas)."""

    def __init__(self, follower: Follower) -> None:
        self.follower = follower
        self._decoder = FrameDecoder()

    def send(self, frame: bytes) -> Dict[str, Any]:
        """Deliver one frame; return the follower's ACK payload."""
        ack: Optional[Dict[str, Any]] = None
        for ftype, payload in self._decoder.feed(frame):
            ack = self.follower.apply_frame(ftype, payload)
        if ack is None:
            raise ReplicationError("frame did not decode to a full frame")
        return ack

    def close(self) -> None:
        """Nothing to release; the follower object outlives the link."""


def _follower_process_main(directory: str, conn: Any,
                           policy: Optional[CheckpointPolicy],
                           fsync: bool) -> None:
    """Entry point of a spawned follower process.

    Receives only plain data (a directory path and a pipe end) — the
    follower reconstructs and exclusively owns its replica WAL in this
    process, so no live handle ever crosses the fork boundary.
    """
    follower = Follower.open(directory, auditor_factory=None,
                             policy=policy, fsync=fsync)
    try:
        while True:
            data = conn.recv_bytes()
            if data == b"":
                break  # orderly shutdown from the primary
            try:
                acks = follower.feed(data)
            except FencedError as exc:
                conn.send_bytes(encode_frame(
                    FRAME_ACK, {"type": "fenced", "error": str(exc)}))
                continue
            except ReplicationError as exc:
                conn.send_bytes(encode_frame(
                    FRAME_ACK, {"type": "error", "error": str(exc)}))
                continue
            for ack in acks:
                conn.send_bytes(ack)
    except EOFError:
        pass  # primary died; our durable state is the whole point
    finally:
        follower.close()


class ProcessLink:
    """A link to a follower running in a spawned child process.

    The child is handed the replica *directory path* over a pipe-backed
    protocol (spawn context only — fork would duplicate live handles).
    ``send`` blocks for the ACK, preserving the synchronous released ⇒
    replicated contract across the process boundary.
    """

    def __init__(self, directory: str,
                 policy: Optional[CheckpointPolicy] = None,
                 fsync: bool = True, timeout: float = 30.0) -> None:
        self.directory = directory
        self._timeout = float(timeout)
        self._decoder = FrameDecoder()
        ctx = multiprocessing.get_context("spawn")
        self._conn, child = ctx.Pipe()
        self._process = ctx.Process(
            target=_follower_process_main,
            args=(directory, child, policy, fsync),
            daemon=True,
        )
        self._process.start()
        child.close()

    def send(self, frame: bytes) -> Dict[str, Any]:
        """Ship one frame and block for the follower's ACK."""
        try:
            self._conn.send_bytes(frame)
            if not self._conn.poll(self._timeout):
                raise ReplicationError(
                    f"follower process for {self.directory!r} did not "
                    f"acknowledge within {self._timeout}s"
                )
            raw = self._conn.recv_bytes()
        except (OSError, EOFError) as exc:
            raise ReplicationError(
                f"follower process for {self.directory!r} is gone "
                f"({exc}); answers cannot be released until the replica "
                f"set is restored"
            ) from exc
        ack: Optional[Dict[str, Any]] = None
        for ftype, payload in self._decoder.feed(raw):
            if ftype != FRAME_ACK:
                raise ReplicationError(
                    f"expected an ACK frame, got type {ftype}")
            ack = payload
        if ack is None:
            raise ReplicationError("follower sent an incomplete ACK")
        return ack

    def close(self) -> None:
        """Shut the child down and reap it."""
        try:
            self._conn.send_bytes(b"")
        except (OSError, BrokenPipeError):
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._conn.close()


# ----------------------------------------------------------------------
# Primary
# ----------------------------------------------------------------------

class ReplicatingWal(CheckpointedWal):
    """A checkpointed WAL that synchronously ships its stream to links.

    Drop-in for :class:`~repro.resilience.checkpoint.CheckpointedWal`
    under :class:`~repro.persistence.JournaledAuditor`; with links
    attached, :meth:`append` returns — and therefore the answer is
    released — only after the record is durable locally **and** every
    link acknowledged it.  Any link failure raises
    :class:`ReplicationError` out of the serving path: fail-closed, the
    answer is withheld rather than released under-replicated.
    """

    def __init__(self, directory: str,
                 policy: Optional[CheckpointPolicy] = None,
                 fsync: bool = True) -> None:
        super().__init__(directory, policy=policy, fsync=fsync)
        self._links: List[Any] = []

    @property
    def links(self) -> Tuple[Any, ...]:
        """The attached replication links."""
        return tuple(self._links)

    def attach(self, link: Any, sync: bool = True) -> None:
        """Attach a follower link, snapshot-install syncing it first.

        The sync ships the manifest metadata, every live segment, and
        every retained snapshot, so a fresh (or stale) replica becomes a
        full copy before the first append is shipped.
        """
        if sync:
            self._check_ack(link, link.send(self._sync_frame()))
        self._links.append(link)

    def detach(self, link: Any) -> None:
        """Stop shipping to ``link`` (the caller closes it)."""
        self._links.remove(link)

    def append(self, event: Mapping[str, Any]) -> None:
        """Append locally, then ship to every link and await ACKs."""
        super().append(event)
        if self._links:
            frame = encode_frame(FRAME_APPEND, {
                "epoch": self._epoch,
                "seq": self._total_events - 1,
                "data": _b64(_encode_record(event)),
            })
            self._broadcast(frame)

    def checkpoint(self, auditor: Any) -> str:
        """Checkpoint locally, then ship the sealed snapshot."""
        snap_name = super().checkpoint(auditor)
        fault_site("primary.post-seal")
        if self._links:
            with open(os.path.join(self.directory, snap_name),
                      "rb") as handle:
                snap_data = handle.read()
            frame = encode_frame(FRAME_CHECKPOINT, {
                "epoch": self._epoch,
                "seq": self._next_seq - 1,
                "snapshot": snap_name,
                "events": self._last_snapshot_events,
                "data": _b64(snap_data),
            })
            self._broadcast(frame)
        return snap_name

    def heartbeat(self) -> None:
        """Ship a HELLO so followers refresh their staleness clocks."""
        self._broadcast(encode_frame(FRAME_HELLO, {
            "epoch": self._epoch,
            "events": self._total_events,
        }))

    def close(self) -> None:
        """Close every link, then the active segment."""
        for link in self._links:
            try:
                link.close()
            except OSError:  # pragma: no cover - platform-dependent
                pass
        self._links = []
        super().close()

    # -- internals ------------------------------------------------------

    def _sync_frame(self) -> bytes:
        segments = []
        for seg in self._segments:
            with open(os.path.join(self.directory, str(seg["name"])),
                      "rb") as handle:
                raw = handle.read()
            segments.append({"name": seg["name"], "base": seg["base"],
                             "count": seg["count"], "data": _b64(raw)})
        snapshots = []
        for snap in self._snapshots:
            with open(os.path.join(self.directory, str(snap["name"])),
                      "rb") as handle:
                raw = handle.read()
            snapshots.append({"name": snap["name"],
                              "events": snap["events"],
                              "data": _b64(raw)})
        return encode_frame(FRAME_SYNC, {
            "epoch": self._epoch,
            "events": self._total_events,
            "next_seq": self._next_seq,
            "dataset": self._dataset_header,
            "segments": segments,
            "snapshots": snapshots,
        })

    def _broadcast(self, frame: bytes) -> None:
        for link in list(self._links):
            self._check_ack(link, link.send(frame))

    def _check_ack(self, link: Any, ack: Any) -> None:
        if not isinstance(ack, dict):
            raise ReplicationError(
                f"replication link {link!r} returned no acknowledgement; "
                f"refusing to release answers the replica set has not "
                f"confirmed"
            )
        kind = ack.get("type")
        if kind == "fenced":
            raise FencedError(str(ack.get("error") or
                                  "this primary's epoch is fenced"))
        if kind != "ack":
            raise ReplicationError(
                f"replica refused the ship: {ack.get('error', ack)!r}")
        acked = int(ack.get("events", -1))
        if acked != self._total_events:
            raise ReplicationError(
                f"replica acknowledged {acked} events but the primary "
                f"holds {self._total_events}; stream divergence — "
                f"re-sync required"
            )


# ----------------------------------------------------------------------
# Serving wiring
# ----------------------------------------------------------------------

def open_replicated_auditor(
        directory: str, auditor_factory: AuditorFactory, dataset: Dataset,
        replicate_to: Sequence[Any] = (),
        policy: Optional[CheckpointPolicy] = None,
        fsync: bool = True, verify: bool = False,
) -> Tuple[JournaledAuditor, Dataset]:
    """Open-or-recover a *replicating* checkpointed WAL primary.

    ``replicate_to`` entries are either link objects (anything with
    ``send``/``close`` — :class:`LocalLink`, :class:`ProcessLink`) or
    replica directory paths, which become in-process read replicas
    (a :class:`Follower` built with the same ``auditor_factory`` behind
    a :class:`LocalLink`).  Every target is snapshot-install synced on
    attach, so stale replicas catch up before the first answer is
    released.
    """
    wrapped, live = open_checkpointed_auditor(
        directory, auditor_factory, dataset, fsync=fsync, verify=verify,
        policy=policy, wal_cls=ReplicatingWal,
    )
    wal = wrapped.wal
    try:
        for target in replicate_to:
            if isinstance(target, str):
                target = LocalLink(Follower.open(
                    target, auditor_factory=auditor_factory,
                    policy=wal.policy, fsync=fsync,
                ))
            wal.attach(target, sync=True)
    except Exception:
        wrapped.close()
        raise
    return wrapped, live


class FollowerReadOnlyAuditor:
    """Serves a follower's replicated decisions; denies everything else.

    The read-scale-out endpoint: a hit re-releases a bit the *primary*
    already audited and disclosed — information-free by definition — and
    a miss is denied fail-closed (``POLICY``), never independently
    audited.  The replica therefore needs no access to the sensitive
    values at all; answers come from the replicated decision stream.
    """

    def __init__(self, follower: Follower,
                 dataset: Optional[Dataset] = None) -> None:
        header = follower.dataset_header
        if dataset is not None and header is not None:
            same = (
                [float(v) for v in dataset.values] == header["values"]
                and float(dataset.low) == float(header["low"])
                and float(dataset.high) == float(header["high"])
            )
            if not same:
                raise ReplicationError(
                    f"replica {follower.directory!r} replicates a "
                    f"different dataset; refusing to serve its "
                    f"decisions as this data's audit history"
                )
        self.follower = follower
        self.dataset = (follower.live_dataset if follower.live_dataset
                        is not None else dataset)
        self.trail = AuditTrail()

    def audit(self, query: Query) -> AuditDecision:
        """Re-release the replicated decision, or deny fail-closed."""
        decision = self.follower.decision_for(query)
        if decision is None:
            decision = AuditDecision.deny(
                DenialReason.POLICY,
                "read-only replica: no replicated decision for this "
                "query; pose it to the primary",
            )
        self.trail.record(query, decision)
        return decision

    def apply_update(self, event: Any) -> None:
        """Updates mutate audit state — primaries only."""
        raise ReplicationError(
            "read-only replica cannot apply updates; send them to the "
            "primary"
        )
