"""Deterministic fault injection at named sites in the serving stack.

The serving code is instrumented with :func:`fault_site` calls at the
moments where a production process can die or misbehave: between computing
a decision and persisting it, mid-way through a WAL record write, between
fsync and answer release, at the start of every sampling attempt, and on
every MCMC step.  When no plan is active a site check is a single global
load — effectively free.  Under :func:`inject` a :class:`FaultPlan` fires
scripted actions (crash, exception, clock stall) at chosen occurrences of
chosen sites, which is what makes the crash/recover/replay suite in
``tests/resilience/test_faults.py`` deterministic and exhaustive over the
registry below.

Crashes are simulated by raising :class:`InjectedCrash`, which derives from
``BaseException`` on purpose: ordinary ``except ReproError`` / ``except
Exception`` recovery code cannot accidentally swallow a "process kill".
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from ..exceptions import ReproError

#: Every instrumented fault site, by name.  ``FaultPlan`` validates against
#: this registry so a typo in a test cannot silently inject nothing.
KNOWN_SITES = frozenset({
    # JournaledAuditor.audit / apply_update: decision computed, nothing
    # persisted yet (a crash here loses the in-flight decision — safe,
    # because the answer was never released).
    "journal.pre-record",
    # After the WAL append + fsync, before the answer is returned (a crash
    # here persists a decision whose answer may never have been seen —
    # recovery conservatively treats it as disclosed).
    "journal.post-record",
    # Inside WriteAheadLog.append, after the first half of the record bytes
    # (a crash here leaves a torn tail for recovery to truncate).
    "wal.mid-append",
    # After the record is durable (between fsync and append returning).
    "wal.post-fsync",
    # Start of each bounded sampling attempt in a budgeted probabilistic
    # decision (raising SamplingError here exercises retry-and-reseed).
    "auditor.attempt",
    # Inside CheckpointedWal.checkpoint, after half the snapshot tmp-file
    # bytes (a crash here leaves a torn *.tmp orphan; the manifest never
    # saw the snapshot, so recovery ignores and removes it).
    "checkpoint.mid-snapshot",
    # Snapshot file renamed and durable, manifest not yet committed (the
    # snapshot is an orphan until the manifest references it).
    "checkpoint.pre-commit",
    # Fresh active segment created during the checkpoint's rotation,
    # manifest not yet committed (the segment is an unreferenced orphan).
    "segment.post-roll",
    # Half-way through writing the manifest *tmp* file (the manifest
    # proper is only ever replaced by atomic rename, so a crash here can
    # never tear it).
    "manifest.mid-write",
    # Manifest committed: the checkpoint is now the recovery root, but
    # compaction has not yet removed the superseded files.
    "checkpoint.post-commit",
    # Between file deletions inside compaction (a crash here leaves
    # unreferenced segment/snapshot files for recovery to sweep).
    "compact.mid-delete",
    # One hit-and-run chain transition (clock stalls here exercise the
    # deadline checkpoints).
    "hit_and_run.step",
    # One colouring-chain transition.
    "coloring.step",
    # Follower side: half-way through writing a shipped record into the
    # follower's active segment (a torn transfer; the primary never saw
    # an ack, so the answer was not released on the strength of this
    # follower).
    "ship.mid-segment",
    # Follower side: frame fully applied and durable, acknowledgement not
    # yet sent (the primary times out / crashes without the ack — the
    # follower is *ahead* of what the primary released, which is the safe
    # direction).
    "ship.pre-ack",
    # Follower side: half-way through writing a shipped snapshot's tmp
    # file during a snapshot install (sync or checkpoint frame); the
    # follower manifest never referenced it, so recovery sweeps it.
    "install.mid-snapshot",
    # Promotion: follower state recovered, fencing epoch not yet
    # committed to the manifest (a crash here makes promotion retryable;
    # the old primary is not fenced until the bump is durable).
    "promote.pre-fence",
    # Primary side: checkpoint committed locally, snapshot frame not yet
    # shipped to followers (a crash here leaves followers on the
    # pre-checkpoint segment layout until the next sync).
    "primary.post-seal",
    # Network edge: half-way through reading an HTTP request body (the
    # client died mid-upload, or the server dies holding a partial body;
    # either way no decision exists yet, so nothing may be journalled).
    "http.torn-body",
    # Network edge: response headers and half the body bytes written,
    # connection then resets (the decision IS durable in the shard WAL —
    # the client may retry and gets a consistent re-decision).
    "http.mid-response",
    # Network edge: between header lines of a slowly-dribbling request
    # (a slow-loris client; clock stalls here exercise the read deadline,
    # which closes the connection without touching any auditor).
    "http.slow-loris",
    # Shard worker: decision journalled durably, response not yet handed
    # back to the HTTP edge (a crash here is the classic "answered on
    # disk, never on the wire" window — recovery replays the WAL and the
    # retried query re-releases the same decision).
    "shard.post-journal",
})


class InjectedCrash(BaseException):
    """A simulated process kill at a fault site.

    Deliberately *not* a :class:`ReproError` (nor even an ``Exception``):
    library recovery code must never catch it, exactly as it could not
    catch ``SIGKILL``.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"injected crash at fault site {site!r}")
        self.site = site


class FaultClock:
    """A controllable monotonic clock for deadline tests.

    Pass :meth:`now` as the ``clock`` of a :class:`~repro.resilience.budget.
    Budget` and drive it with :class:`Stall` actions (or directly via
    :meth:`advance`).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current reading."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Jump the clock forward."""
        self._now += float(seconds)


class Crash:
    """Kill the process at the site (raises :class:`InjectedCrash`)."""

    def fire(self, site: str) -> None:
        raise InjectedCrash(site)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Crash()"


class Raise:
    """Raise ``factory(message)`` at the site (e.g. a transient
    :class:`~repro.exceptions.SamplingError`)."""

    def __init__(self, factory: Callable[[str], BaseException]) -> None:
        self.factory = factory

    def fire(self, site: str) -> None:
        raise self.factory(f"injected fault at {site}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Raise({self.factory!r})"


class Stall:
    """Advance a :class:`FaultClock` at the site (a simulated GC pause,
    VM migration, or NTP step — anything that burns wall time)."""

    def __init__(self, clock: FaultClock, seconds: float) -> None:
        self.clock = clock
        self.seconds = seconds

    def fire(self, site: str) -> None:
        self.clock.advance(self.seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Stall({self.seconds})"


class FaultAction(Protocol):
    """Anything with a ``fire(site)`` — Crash, Raise, Stall, or custom."""

    def fire(self, site: str) -> None: ...  # pragma: no cover - protocol


#: A scripted action, or ``None`` for "let this occurrence pass".
Action = Optional[FaultAction]


class FaultPlan:
    """Scripted actions per site, consumed one per occurrence.

    ``actions[site][k]`` fires on the ``k``-th hit of ``site`` (``None``
    entries let that hit pass); hits beyond the script are no-ops.  The
    plan records every hit in :attr:`hits` so tests can assert a site was
    actually reached.
    """

    def __init__(self, actions: Mapping[str, Sequence[Action]]) -> None:
        unknown = set(actions) - KNOWN_SITES
        if unknown:
            raise ReproError(
                f"unregistered fault site(s) {sorted(unknown)}; "
                f"known sites: {sorted(KNOWN_SITES)}"
            )
        self._scripts: Dict[str, List[Action]] = {
            site: list(script) for site, script in actions.items()
        }
        self._cursor: Dict[str, int] = {site: 0 for site in actions}
        self.hits: List[Tuple[str, int]] = []
        self.fired: List[Tuple[str, int]] = []

    @classmethod
    def crash_at(cls, site: str, occurrence: int = 0) -> "FaultPlan":
        """Crash on the ``occurrence``-th hit of ``site``."""
        script: List[Action] = [None] * occurrence + [Crash()]
        return cls({site: script})

    def fire(self, site: str) -> None:
        """Record a hit of ``site`` and run its scripted action, if any."""
        script = self._scripts.get(site)
        if script is None:
            return
        k = self._cursor[site]
        self._cursor[site] = k + 1
        self.hits.append((site, k))
        if k >= len(script):
            return
        action = script[k]
        if action is None:
            return
        self.fired.append((site, k))
        action.fire(site)

    def hit_count(self, site: str) -> int:
        """How many times ``site`` was reached under this plan."""
        return self._cursor.get(site, 0)


_PLAN: Optional[FaultPlan] = None


def fault_site(name: str) -> None:
    """Checkpoint a named fault site (no-op unless a plan is active)."""
    if _PLAN is not None:
        _PLAN.fire(name)


def plan_active() -> bool:
    """Whether a fault plan is currently injected."""
    return _PLAN is not None


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the ``with`` block."""
    global _PLAN
    if _PLAN is not None:
        raise ReproError("a fault plan is already active")
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = None
