"""Per-query deadlines, resource budgets, and the fail-closed guard.

A probabilistic auditor that hangs or dies mid-decision is a privacy hole:
an operator who restarts it and retries, or a client who infers state from
a timeout, is interacting with an auditor outside its analysed behaviour.
:class:`Budget` bounds every decision — wall time, sampling attempts, MCMC
chain steps — and :func:`run_fail_closed` turns any exhaustion into a
*denial* carrying :attr:`~repro.types.DenialReason.RESOURCE_EXHAUSTED`,
journalled like any other denial so the decision stream stays simulatable
(the denial depends only on public resource limits and the passage of time,
never on the sensitive data).

Determinism contract (asserted by the test suite): with a budget active,
each decision draws exactly **one** seed from the auditor's master stream
and every sampling attempt re-derives a fresh generator from that same
seed.  A transient :class:`~repro.exceptions.SamplingError` therefore
discards the failed attempt's partially-consumed stream and the retry
replays an identical one — a run with injected transient faults produces
bitwise-identical answers to an uninjected run with the same master seed,
while a *persistent* sampler failure exhausts ``max_sampler_attempts`` and
fails closed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from ..exceptions import (
    PrivacyParameterError,
    ResourceExhaustedError,
    SamplingError,
)
from ..types import AuditDecision, DenialReason
from .faults import fault_site

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .overload import CircuitBreaker

Clock = Callable[[], float]

#: Seed space for per-decision derived generators.
_SEED_SPAN = 2**63 - 1


@dataclass(frozen=True)
class Budget:
    """Resource limits for one audit decision.

    Parameters
    ----------
    wall_time:
        Deadline in seconds per decision (``None`` = unlimited).
    max_sampler_attempts:
        Bounded retry-and-reseed: how many times a decision's sampling
        phase may be restarted after a :class:`SamplingError` before the
        auditor gives up and denies.
    max_chain_steps:
        Cap on cooperative-cancellation checkpoints (≈ MCMC transitions)
        per decision (``None`` = unlimited).
    clock:
        Monotonic time source; injectable for tests and fault drills
        (defaults to :func:`time.monotonic`).
    """

    wall_time: Optional[float] = None
    max_sampler_attempts: int = 3
    max_chain_steps: Optional[int] = None
    clock: Optional[Clock] = None

    def __post_init__(self) -> None:
        if self.wall_time is not None and self.wall_time <= 0:
            raise PrivacyParameterError("wall_time must be positive")
        if self.max_sampler_attempts < 1:
            raise PrivacyParameterError(
                "max_sampler_attempts must be at least 1"
            )
        if self.max_chain_steps is not None and self.max_chain_steps < 1:
            raise PrivacyParameterError("max_chain_steps must be positive")

    def start(self) -> "BudgetScope":
        """Open a scope for one decision (starts the deadline clock)."""
        return BudgetScope(self)


class BudgetScope:
    """Live accounting for one decision under a :class:`Budget`.

    Pass :meth:`checkpoint` into the samplers as their cooperative
    cancellation hook; it raises :class:`ResourceExhaustedError` the moment
    the deadline passes or the step cap is hit.
    """

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self._clock: Clock = budget.clock or time.monotonic
        self._t0 = self._clock()
        self.steps = 0

    def elapsed(self) -> float:
        """Seconds since the scope opened."""
        return self._clock() - self._t0

    def checkpoint(self) -> None:
        """Cooperative cancellation point; raises on exhaustion."""
        self.steps += 1
        cap = self.budget.max_chain_steps
        if cap is not None and self.steps > cap:
            raise ResourceExhaustedError(
                f"chain-step budget exhausted ({self.steps} > {cap})"
            )
        deadline = self.budget.wall_time
        if deadline is not None:
            elapsed = self.elapsed()
            if elapsed > deadline:
                raise ResourceExhaustedError(
                    f"deadline exceeded ({elapsed:.3f}s > {deadline}s "
                    f"after {self.steps} steps)"
                )


DecideFn = Callable[[Optional[BudgetScope], np.random.Generator],
                    Optional[AuditDecision]]


def run_fail_closed(budget: Optional[Budget], rng: np.random.Generator,
                    decide: DecideFn,
                    breaker: Optional["CircuitBreaker"] = None,
                    ) -> Optional[AuditDecision]:
    """Run one sampling-based decision under ``budget``, failing closed.

    ``decide(scope, gen)`` is the auditor's sampling decision body; it
    returns a denial or ``None`` (= answer).  Without a budget the body
    runs once on the auditor's own stream, exactly as before this layer
    existed.  With a budget:

    * every attempt gets a fresh generator derived from one per-decision
      seed (see the module docstring's determinism contract);
    * :class:`SamplingError` triggers a bounded retry with a re-derived
      (identical) generator;
    * :class:`ResourceExhaustedError` — raised by the scope's checkpoints —
      and attempt exhaustion both yield a ``RESOURCE_EXHAUSTED`` denial.

    With a :class:`~repro.resilience.overload.CircuitBreaker` attached,
    the breaker is consulted first — while it is open the samplers are
    never entered and the decision short-circuits to a conservative
    ``RESOURCE_EXHAUSTED`` denial — and every computed outcome is fed
    back so repeated exhaustions trip it (the short-circuit denial is
    *not* fed back, or the breaker would latch open on its own output).

    This guard sits on the auditor decision path, so it must stay
    taint-clean: it touches the query's decision machinery only through
    the opaque ``decide`` callback and never the sensitive dataset.
    """
    if breaker is not None:
        short_circuit = breaker.preflight()
        if short_circuit is not None:
            return short_circuit
    decision = _run_budgeted(budget, rng, decide)
    if breaker is not None:
        breaker.observe(decision)
    return decision


def _run_budgeted(budget: Optional[Budget], rng: np.random.Generator,
                  decide: DecideFn) -> Optional[AuditDecision]:
    if budget is None:
        return decide(None, rng)
    seed = int(rng.integers(_SEED_SPAN))
    attempts = budget.max_sampler_attempts
    last_error: Optional[SamplingError] = None
    scope = budget.start()  # deadline and step cap span all attempts
    for _attempt in range(attempts):
        try:
            fault_site("auditor.attempt")
            return decide(scope, np.random.default_rng(seed))
        except SamplingError as exc:
            last_error = exc
            continue
        except ResourceExhaustedError as exc:
            # audit: LEAK001 -- relays budget diagnostics (step caps,
            # deadlines) built from policy constants, never data values
            return AuditDecision.deny(DenialReason.RESOURCE_EXHAUSTED,
                                      str(exc))
    # audit: LEAK001 -- attempt count and sampler error are policy/operational
    # diagnostics; SamplingError messages carry no data values
    return AuditDecision.deny(
        DenialReason.RESOURCE_EXHAUSTED,
        f"sampling failed after {attempts} attempt(s): {last_error}",
    )
