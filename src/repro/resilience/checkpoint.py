"""Checkpointed, segmented write-ahead audit log with compaction.

The single-file :class:`~repro.resilience.wal.WriteAheadLog` replays its
entire history on every restart, so recovery time grows without bound —
the opposite of an always-on online auditor.  This module bounds both
recovery time and disk usage while keeping the fail-closed contract:

* the log is split into **segments** (append-only files in the same
  checksummed frame format as the single-file WAL);
* a **checkpoint** atomically persists a snapshot of the auditor's full
  decision state (temp-file + rename + parent-directory fsync), seals the
  active segment, and starts a fresh one;
* **recovery** loads the newest valid snapshot and replays only the
  post-checkpoint suffix of the log; a torn or corrupt snapshot falls
  back to the previous one (longer suffix), and to a full replay while
  the pre-checkpoint segments still exist;
* **compaction** deletes segments and snapshots that every retained
  recovery path has stopped needing — never before the manifest that
  stops referencing them is durably committed.

A single ``MANIFEST`` file — one checksummed record, only ever replaced
by atomic rename — is the recovery root: it names the live segments (with
their event offsets), the retained snapshots, and the initial dataset.
Files the manifest does not reference are orphans from a crash inside a
checkpoint or compaction; recovery sweeps them.

Snapshot contents are the pickled auditor object (its synopsis/row-space
state, trail, dataset, and — for probabilistic auditors — RNG state), so
restoring one replays **zero** pre-checkpoint events.  The pickle rides
inside a CRC-checked frame, which catches torn or bit-rotted snapshots;
it is *not* a defence against an adversary who can write the WAL
directory — the directory carries the same trust as the audit log itself.

Durability invariant (unchanged from the single-file WAL): an answer is
released only after its record is fsynced into the active segment.  Every
checkpoint/compaction step is crash-atomic: whatever instant the process
dies, recovery reconstructs the exact decision state — the chaos sweep in
``tests/resilience/test_chaos.py`` proves it at every instrumented point.
"""

from __future__ import annotations

import base64
import os
import pickle
from dataclasses import dataclass
from typing import IO, Any, Dict, List, Mapping, Optional, Tuple

from ..persistence import (
    AuditJournal,
    JournaledAuditor,
    JournalError,
    replay_events,
)
from ..sdb.dataset import Dataset
from .faults import fault_site, plan_active
from .wal import (
    WAL_VERSION,
    AuditorFactory,
    WriteAheadLog,
    _decode_record,
    _encode_record,
    fsync_directory,
)

MANIFEST_VERSION = 1
MANIFEST_NAME = "MANIFEST"

#: Files recovery/create may sweep when the manifest does not claim them.
_OWNED_PREFIXES = ("segment-", "snapshot-")


def _segment_name(seq: int) -> str:
    return f"segment-{seq:06d}.log"


def _snapshot_name(seq: int) -> str:
    return f"snapshot-{seq:06d}.snap"


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to checkpoint, and how much history to retain.

    Parameters
    ----------
    every_records:
        Checkpoint after this many journal events since the last snapshot
        (``None`` disables the record trigger).
    every_bytes:
        Checkpoint once the active segment holds at least this many bytes
        (``None`` disables the byte trigger).
    keep_snapshots:
        How many snapshots the manifest retains.  Two (the default) means
        recovery survives one torn/corrupt snapshot without resorting to
        a full replay.
    compact:
        Whether to delete segments every retained snapshot has covered.
        Compaction bounds disk usage but retires the full-replay fallback
        for the compacted prefix — recovery then needs at least one valid
        retained snapshot.
    """

    every_records: Optional[int] = 256
    every_bytes: Optional[int] = None
    keep_snapshots: int = 2
    compact: bool = True

    def __post_init__(self) -> None:
        if self.every_records is not None and self.every_records < 1:
            raise JournalError("every_records must be positive or None")
        if self.every_bytes is not None and self.every_bytes < 1:
            raise JournalError("every_bytes must be positive or None")
        if self.keep_snapshots < 1:
            raise JournalError("keep_snapshots must be at least 1")


@dataclass
class RecoveryInfo:
    """What one recovery actually did (asserted by the chaos sweep).

    ``snapshot_events + replayed_events`` always equals the durable event
    count; ``replayed_events`` is the suffix replay the snapshot bounded.
    """

    snapshot_name: Optional[str]  #: snapshot used (``None`` = full replay)
    snapshot_events: int          #: events restored from the snapshot
    replayed_events: int          #: events replayed from segments
    snapshots_skipped: int        #: torn/corrupt snapshots passed over
    torn_tail_healed: bool        #: active segment had a torn final record
    orphans_removed: int          #: unreferenced files swept


class CheckpointedWal:
    """Segmented WAL directory with snapshots, a manifest, and compaction.

    Construct via :meth:`create` (fresh directory) or :meth:`recover`
    (after a crash or clean shutdown); serving code normally goes through
    :func:`open_checkpointed_auditor` or
    :func:`repro.resilience.wal.open_wal_auditor` with a directory path.

    Drop-in for :class:`~repro.resilience.wal.WriteAheadLog` where
    :class:`~repro.persistence.JournaledAuditor` is concerned: it exposes
    the same ``append``/``close`` surface plus ``maybe_checkpoint``, which
    the journalled auditor calls after every durable append.
    """

    def __init__(self, directory: str,
                 policy: Optional[CheckpointPolicy] = None,
                 fsync: bool = True) -> None:
        self.directory = directory
        self.policy = policy or CheckpointPolicy()
        self._fsync = fsync
        self._active: Optional[IO[bytes]] = None
        self._active_bytes = 0
        self._segments: List[Dict[str, Any]] = []
        self._snapshots: List[Dict[str, Any]] = []
        self._dataset_header: Dict[str, Any] = {}
        self._next_seq = 1
        self._total_events = 0
        self._last_snapshot_events = 0
        self._epoch = 0
        self.last_recovery: Optional[RecoveryInfo] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, directory: str, dataset: Dataset,
               policy: Optional[CheckpointPolicy] = None,
               fsync: bool = True) -> "CheckpointedWal":
        """Start a fresh checkpointed WAL for ``dataset``.

        Refuses a directory that already holds a manifest (use
        :meth:`recover`) or any non-empty log files without one (that
        history may matter; only a crashed *creation* — empty strays, no
        manifest — is cleaned up and retried).
        """
        os.makedirs(directory, exist_ok=True)
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            raise JournalError(
                f"checkpointed WAL {directory!r} already exists; use "
                f"CheckpointedWal.recover() to resume it"
            )
        for name in sorted(os.listdir(directory)):
            path = os.path.join(directory, name)
            if name.endswith(".tmp"):
                os.unlink(path)
                continue
            if not name.startswith(_OWNED_PREFIXES):
                continue
            if os.path.getsize(path) > 0:
                raise JournalError(
                    f"directory {directory!r} holds log files but no "
                    f"manifest; refusing to overwrite possible audit "
                    f"history — restore the MANIFEST from a replica or "
                    f"point at an empty directory"
                )
            os.unlink(path)  # empty stray from a crashed create()
        wal = cls(directory, policy=policy, fsync=fsync)
        wal._dataset_header = {
            "values": [float(v) for v in dataset.values],
            "low": float(dataset.low),
            "high": float(dataset.high),
        }
        wal._segments = [{"name": _segment_name(1), "base": 0,
                          "count": None}]
        wal._next_seq = 2
        wal._open_active()
        if fsync:
            fsync_directory(directory)
        wal._commit_manifest()
        return wal

    @classmethod
    def recover(cls, directory: str, auditor_factory: AuditorFactory,
                policy: Optional[CheckpointPolicy] = None,
                fsync: bool = True, verify: bool = False,
                ) -> Tuple[JournaledAuditor, Dataset, RecoveryInfo]:
        """Reopen after a crash: snapshot + suffix replay, with fallback.

        The recovery state machine, in order:

        1. read the ``MANIFEST`` (atomically replaced, so damage here is
           corruption or tampering — refused, never healed);
        2. parse every live segment; heal a torn tail on the *active*
           (final) segment only, refuse damage anywhere else;
        3. load the newest retained snapshot; on a torn/corrupt one fall
           back to the previous, then to a full replay — but only while
           the manifest still references the pre-checkpoint segments
           (compaction retires that path);
        4. replay the post-snapshot suffix through the auditor's state
           hooks (``verify=True`` re-runs the suffix's decisions — only
           meaningful for deterministic auditors);
        5. sweep orphan files no manifest references and reopen the
           active segment for appending.
        """
        wal = cls(directory, policy=policy, fsync=fsync)
        wal._load_manifest(_read_manifest(directory))
        seg_records, torn_healed = wal._read_segments()
        last = wal._segments[-1]
        total = int(last["base"]) + len(seg_records[last["name"]])

        auditor: Any = None
        chosen: Optional[Dict[str, Any]] = None
        skipped = 0
        # Fast path: a young log (no snapshot taken yet) has no recovery
        # root to resolve — the "suffix" is the whole log, and recovery
        # drops straight to the full replay below without probing any
        # snapshot files.
        for snap in reversed(wal._snapshots):
            try:
                auditor = _load_snapshot(
                    os.path.join(directory, str(snap["name"])),
                    int(snap["events"]),
                )
            except Exception:
                # Torn, bit-rotted, or unreadable snapshot: fall back to
                # an older recovery root.  (InjectedCrash is a
                # BaseException and deliberately not caught.)
                skipped += 1
                continue
            chosen = snap
            break

        if chosen is not None:
            dataset = auditor.dataset
            suffix = []
            base_events = int(chosen["events"])
            for seg in wal._segments:
                records = seg_records[str(seg["name"])]
                base = int(seg["base"])
                if base + len(records) <= base_events:
                    # Wholly pre-checkpoint segment: retained only as a
                    # fallback recovery root — nothing here to replay.
                    continue
                suffix.extend(records[max(0, base_events - base):])
            replayed = replay_events(auditor, dataset, suffix,
                                     verify=verify)
            journal_events = suffix
            snapshot_name: Optional[str] = str(chosen["name"])
        elif int(wal._segments[0]["base"]) == 0:
            all_events = [record for seg in wal._segments
                          for record in seg_records[seg["name"]]]
            journal = AuditJournal(
                initial_values=[float(v)
                                for v in wal._dataset_header["values"]],
                low=float(wal._dataset_header["low"]),
                high=float(wal._dataset_header["high"]),
                events=all_events,
            )
            auditor, dataset = journal.restore(auditor_factory,
                                               verify=verify)
            base_events = 0
            replayed = len(all_events)
            journal_events = all_events
            snapshot_name = None
        else:
            raise JournalError(
                f"checkpointed WAL {directory!r} has no readable snapshot "
                f"and its pre-checkpoint segments were compacted away; "
                f"refusing to serve from an incomplete audit history — "
                f"restore from a replica or archive"
            )

        removed = wal._sweep_orphans()
        wal._total_events = total
        wal._last_snapshot_events = (int(wal._snapshots[-1]["events"])
                                     if wal._snapshots else 0)
        wal._open_active()
        info = RecoveryInfo(
            snapshot_name=snapshot_name,
            snapshot_events=base_events,
            replayed_events=replayed,
            snapshots_skipped=skipped,
            torn_tail_healed=torn_healed,
            orphans_removed=removed,
        )
        wal.last_recovery = info
        restored = AuditJournal(
            initial_values=[float(v)
                            for v in wal._dataset_header["values"]],
            low=float(wal._dataset_header["low"]),
            high=float(wal._dataset_header["high"]),
            events=list(journal_events),
        )
        return JournaledAuditor(auditor, wal=wal, journal=restored), \
            dataset, info

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, event: Mapping[str, Any]) -> None:
        """Durably append one record to the active segment."""
        if self._active is None:
            raise JournalError(
                f"checkpointed WAL {self.directory!r} is closed")
        data = _encode_record(event)
        half = len(data) // 2
        self._active.write(data[:half])
        if plan_active():
            # Make the half-written state visible before a simulated kill,
            # the way a real partial page write would be.
            self._active.flush()
        fault_site("wal.mid-append")
        self._active.write(data[half:])
        self._active.flush()
        if self._fsync:
            os.fsync(self._active.fileno())
        self._active_bytes += len(data)
        self._total_events += 1
        fault_site("wal.post-fsync")

    def raw_append(self, data: bytes) -> None:
        """Durably append one *pre-encoded* record (replication ship path).

        The follower applies exactly the bytes the primary framed — the
        caller has already CRC-validated them — so the replica segment is
        a bitwise copy of the primary's record stream.
        """
        if self._active is None:
            raise JournalError(
                f"checkpointed WAL {self.directory!r} is closed")
        half = len(data) // 2
        self._active.write(data[:half])
        if plan_active():
            # Make the half-written state visible before a simulated kill,
            # the way a real torn transfer would be.
            self._active.flush()
        fault_site("ship.mid-segment")
        self._active.write(data[half:])
        self._active.flush()
        if self._fsync:
            os.fsync(self._active.fileno())
        self._active_bytes += len(data)
        self._total_events += 1

    def close(self) -> None:
        """Close the active segment handle."""
        if self._active is not None:
            self._active.close()
            self._active = None

    def __enter__(self) -> "CheckpointedWal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    @property
    def total_events(self) -> int:
        """Journal events durably appended over the log's lifetime."""
        return self._total_events

    @property
    def events_since_checkpoint(self) -> int:
        """Events appended after the newest snapshot."""
        return self._total_events - self._last_snapshot_events

    @property
    def epoch(self) -> int:
        """The manifest's fencing epoch (bumped by failover promotion)."""
        return self._epoch

    def fence(self) -> int:
        """Durably bump the fencing epoch (the promotion commit point).

        Replication rejects frames from any sender whose epoch is older
        than the receiver's, so once a promoted follower's bump is
        committed a resurrected old primary can no longer ship appends to
        it — split-brain writes are refused, not merged.
        """
        self._epoch += 1
        self._commit_manifest()
        return self._epoch

    def should_checkpoint(self) -> bool:
        """Whether the policy's record/byte thresholds have tripped."""
        if self.events_since_checkpoint <= 0:
            return False
        policy = self.policy
        if (policy.every_records is not None
                and self.events_since_checkpoint >= policy.every_records):
            return True
        return (policy.every_bytes is not None
                and self._active_bytes >= policy.every_bytes)

    def maybe_checkpoint(self, auditor: Any) -> bool:
        """Checkpoint ``auditor`` if the policy says it is time.

        Called by :class:`~repro.persistence.JournaledAuditor` after each
        durable append; returns whether a checkpoint was taken.
        """
        if not self.should_checkpoint():
            return False
        self.checkpoint(auditor)
        return True

    def checkpoint(self, auditor: Any) -> str:
        """Snapshot ``auditor``, rotate the active segment, compact.

        Crash-atomic: the manifest commit (atomic rename) is the single
        point where the new snapshot becomes the recovery root; a crash
        on either side leaves only orphan files, which recovery sweeps.
        Returns the snapshot file name.
        """
        if self._active is None:
            raise JournalError(
                f"checkpointed WAL {self.directory!r} is closed")
        events = self._total_events
        seq = self._next_seq
        snap_name = _snapshot_name(seq)
        payload = {
            "type": "snapshot",
            "snapshot_version": 1,
            "events": events,
            "state": base64.b64encode(
                pickle.dumps(auditor)).decode("ascii"),
        }
        self._write_snapshot(snap_name, payload)
        fault_site("checkpoint.pre-commit")
        self._seal_and_commit(seq, snap_name, events)
        return snap_name

    def install_checkpoint(self, seq: int, snap_name: str, events: int,
                           snapshot_data: bytes) -> None:
        """Install a *shipped* snapshot (replication's checkpoint frame).

        The follower-side twin of :meth:`checkpoint`: instead of pickling
        a local auditor it installs the primary's already-encoded snapshot
        record, then runs the same crash-atomic seal/rotate/commit/compact
        sequence so the follower directory stays a valid checkpointed WAL
        whose file names track the primary's.
        """
        if self._active is None:
            raise JournalError(
                f"checkpointed WAL {self.directory!r} is closed")
        if events != self._total_events:
            raise JournalError(
                f"shipped snapshot covers {events} events but this "
                f"replica holds {self._total_events}; refusing to "
                f"install a checkpoint that skips or rewinds history"
            )
        if seq < self._next_seq:
            raise JournalError(
                f"shipped checkpoint sequence {seq} is stale (replica is "
                f"at {self._next_seq}); refusing to rewind the manifest"
            )
        self._write_file_atomic(snap_name, snapshot_data,
                                mid_site="install.mid-snapshot")
        fault_site("checkpoint.pre-commit")
        self._seal_and_commit(seq, snap_name, events)

    def _seal_and_commit(self, seq: int, snap_name: str,
                         events: int) -> None:
        """Rotate the active segment and commit the new recovery root.

        Crash-atomic tail shared by :meth:`checkpoint` and
        :meth:`install_checkpoint`; the snapshot file ``snap_name`` is
        already durable when this runs.
        """
        # Seal the active segment and start a fresh one so the snapshot
        # boundary coincides with a segment boundary.
        assert self._active is not None
        self._active.close()
        self._active = None
        for seg in self._segments:
            if seg["count"] is None:
                seg["count"] = events - int(seg["base"])
        self._segments.append({"name": _segment_name(seq), "base": events,
                               "count": None})
        self._next_seq = seq + 1
        self._open_active()
        if self._fsync:
            fsync_directory(self.directory)
        fault_site("segment.post-roll")

        # Retention: the new manifest stops referencing superseded files;
        # only then may compaction delete them.
        self._snapshots.append({"name": snap_name, "events": events})
        keep = self.policy.keep_snapshots
        dropped = self._snapshots[:-keep]
        self._snapshots = self._snapshots[-keep:]
        if self.policy.compact:
            horizon = int(self._snapshots[0]["events"])
            live = []
            for seg in self._segments:
                count = seg["count"]
                if count is not None and int(seg["base"]) + count <= horizon:
                    dropped.append(seg)
                else:
                    live.append(seg)
            self._segments = live
        self._last_snapshot_events = events
        self._commit_manifest()
        fault_site("checkpoint.post-commit")

        for stale in dropped:
            fault_site("compact.mid-delete")
            try:
                os.unlink(os.path.join(self.directory, str(stale["name"])))
            except OSError:  # already gone: compaction is idempotent
                pass
        if dropped and self._fsync:
            fsync_directory(self.directory)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _open_active(self) -> None:
        path = os.path.join(self.directory, str(self._segments[-1]["name"]))
        self._active = open(path, "ab")
        self._active_bytes = os.path.getsize(path)

    def _load_manifest(self, payload: Dict[str, Any]) -> None:
        try:
            self._dataset_header = {
                "values": [float(v) for v in payload["dataset"]["values"]],
                "low": float(payload["dataset"]["low"]),
                "high": float(payload["dataset"]["high"]),
            }
            self._segments = [dict(seg) for seg in payload["segments"]]
            self._snapshots = [dict(snap) for snap in payload["snapshots"]]
            self._next_seq = int(payload["next_seq"])
            # Fencing epoch (replication): absent in pre-replication
            # manifests, which are all epoch 0.
            self._epoch = int(payload.get("epoch", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(
                f"checkpointed WAL manifest in {self.directory!r} is "
                f"malformed: {exc}"
            ) from exc
        if not self._segments:
            raise JournalError(
                f"checkpointed WAL manifest in {self.directory!r} names "
                f"no segments"
            )

    def _read_segments(self) -> Tuple[Dict[str, List[Dict[str, Any]]], bool]:
        """Parse every live segment; heal the active segment's torn tail."""
        seg_records: Dict[str, List[Dict[str, Any]]] = {}
        torn_healed = False
        for pos, seg in enumerate(self._segments):
            name = str(seg["name"])
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as handle:
                    raw = handle.read()
            except OSError as exc:
                raise JournalError(
                    f"checkpointed WAL {self.directory!r} is missing "
                    f"segment {name} ({exc}); restore from a replica or "
                    f"archive"
                ) from exc
            records, good_bytes = WriteAheadLog._parse(raw, path)
            if good_bytes < len(raw):
                if pos != len(self._segments) - 1:
                    raise JournalError(
                        f"sealed segment {name} of {self.directory!r} is "
                        f"damaged; only the active segment may carry a "
                        f"torn tail — restore from a replica or archive"
                    )
                with open(path, "r+b") as handle:
                    handle.truncate(good_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
                torn_healed = True
            expected = seg["count"]
            if expected is not None and len(records) != int(expected):
                raise JournalError(
                    f"sealed segment {name} of {self.directory!r} holds "
                    f"{len(records)} records where the manifest sealed "
                    f"{expected}; refusing to serve from a damaged audit "
                    f"history — restore from a replica or archive"
                )
            seg_records[name] = records
        return seg_records, torn_healed

    def _write_file_atomic(self, name: str, data: bytes,
                           mid_site: Optional[str] = None) -> None:
        """Write ``data`` to ``name`` via tmp-file + fsync + atomic rename.

        The single durable-artifact protocol shared by snapshots, the
        manifest, and replication's snapshot installs.  ``mid_site``
        names the fault site fired half-way through the tmp write.
        """
        path = os.path.join(self.directory, name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            half = len(data) // 2
            handle.write(data[:half])
            if plan_active():
                # Make the half-written state visible before a simulated
                # kill, the way a real partial page write would be.
                handle.flush()
            if mid_site is not None:
                fault_site(mid_site)
            handle.write(data[half:])
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if self._fsync:
            fsync_directory(self.directory)

    def _write_snapshot(self, name: str, payload: Dict[str, Any]) -> None:
        self._write_file_atomic(name, _encode_record(payload),
                                mid_site="checkpoint.mid-snapshot")

    def _commit_manifest(self) -> None:
        payload = {
            "type": "manifest",
            "manifest_version": MANIFEST_VERSION,
            "wal_version": WAL_VERSION,
            "dataset": self._dataset_header,
            "segments": self._segments,
            "snapshots": self._snapshots,
            "next_seq": self._next_seq,
            "epoch": self._epoch,
        }
        self._write_file_atomic(MANIFEST_NAME, _encode_record(payload),
                                mid_site="manifest.mid-write")

    def _sweep_orphans(self) -> int:
        referenced = {MANIFEST_NAME}
        referenced.update(str(seg["name"]) for seg in self._segments)
        referenced.update(str(snap["name"]) for snap in self._snapshots)
        removed = 0
        for name in sorted(os.listdir(self.directory)):
            if name in referenced:
                continue
            if (name.startswith(_OWNED_PREFIXES)
                    or name.endswith(".tmp")):
                os.unlink(os.path.join(self.directory, name))
                removed += 1
        return removed


def _read_manifest(directory: str) -> Dict[str, Any]:
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise JournalError(
            f"{directory!r} holds no checkpointed-WAL manifest ({exc}); "
            f"start a fresh WAL or point at the right directory"
        ) from exc
    try:
        payload = _decode_record(raw.rstrip(b"\n"), 0)
    except ValueError as exc:
        raise JournalError(
            f"checkpointed WAL manifest {path!r} is corrupt ({exc}); the "
            f"manifest is only ever replaced atomically, so this is "
            f"damage or tampering — restore from a replica or archive"
        ) from exc
    if payload.get("type") != "manifest":
        raise JournalError(
            f"{path!r} is not a checkpointed WAL manifest "
            f"(got type {payload.get('type')!r})"
        )
    version = payload.get("manifest_version")
    if version != MANIFEST_VERSION:
        raise JournalError(
            f"checkpointed WAL manifest {path!r} has unsupported version "
            f"{version!r} (this build reads version {MANIFEST_VERSION}); "
            f"upgrade or migrate before serving"
        )
    return payload


def _load_snapshot(path: str, expected_events: int) -> Any:
    """Validate and unpickle one snapshot; raises on any damage."""
    with open(path, "rb") as handle:
        raw = handle.read()
    payload = _decode_record(raw.rstrip(b"\n"), 0)
    if payload.get("type") != "snapshot":
        raise ValueError(f"{path!r} is not a snapshot record")
    if payload.get("snapshot_version") != 1:
        raise ValueError(
            f"unsupported snapshot version {payload.get('snapshot_version')!r}"
        )
    if int(payload.get("events", -1)) != expected_events:
        raise ValueError(
            f"snapshot covers {payload.get('events')!r} events, manifest "
            f"says {expected_events}"
        )
    return pickle.loads(base64.b64decode(payload["state"]))


def open_checkpointed_auditor(
        directory: str, auditor_factory: AuditorFactory, dataset: Dataset,
        fsync: bool = True, verify: bool = False,
        policy: Optional[CheckpointPolicy] = None,
        wal_cls: Optional[type] = None,
) -> Tuple[JournaledAuditor, Dataset]:
    """Open-or-recover a checkpointed WAL directory (serving entry point).

    Mirrors :func:`repro.resilience.wal.open_wal_auditor`: an existing
    manifest is recovered (``dataset`` must match the manifest's initial
    dataset) and serving resumes with bounded replay; otherwise a fresh
    checkpointed WAL is created over ``dataset``.

    ``wal_cls`` substitutes a :class:`CheckpointedWal` subclass (the
    replication layer passes its shipping primary here).
    """
    cls = wal_cls or CheckpointedWal
    directory = directory.rstrip("/").rstrip(os.sep) or directory
    if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
        wrapped, live, _info = cls.recover(
            directory, auditor_factory, policy=policy, fsync=fsync,
            verify=verify,
        )
        journal = wrapped.journal
        same = (
            journal.initial_values == [float(v) for v in dataset.values]
            and journal.low == float(dataset.low)
            and journal.high == float(dataset.high)
        )
        if not same:
            raise JournalError(
                f"checkpointed WAL {directory!r} was recorded over a "
                f"different dataset; refusing to resume (pass a fresh "
                f"WAL directory or the original data)"
            )
        return wrapped, live
    wal = cls.create(directory, dataset, policy=policy, fsync=fsync)
    return JournaledAuditor(auditor_factory(dataset), wal=wal), dataset
