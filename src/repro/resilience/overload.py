"""Overload-safe serving: admission control and a sampler circuit breaker.

The fail-closed story of :mod:`repro.resilience.budget` bounds *one*
decision; this module bounds the *load*.  An auditing frontend that accepts
unbounded concurrent queries is a denial-of-service surface (see
``attack/dos_attack.py``): an attacker who floods it with expensive
probabilistic audits starves everyone else, and an operator who "fixes"
that with an unbounded queue merely converts the outage into unbounded
latency.  Both layers here shed load instead of queueing it, and every
shed query is a first-class **journalled denial** — admission decisions
are observable outputs, so they go through the same disclosure log as
audit decisions (see :meth:`repro.persistence.JournaledAuditor.
record_refusal`), and they depend only on public state (arrival times,
concurrency), never on the sensitive data, so simulatability is preserved.

Two mechanisms:

* :class:`AdmissionController` — per-user token buckets (sustained rate +
  burst) and a bounded in-flight gate, applied by
  :class:`~repro.sdb.multiuser.MultiUserFrontend` *before* the auditor
  runs.  Over-limit queries are denied with
  :attr:`~repro.types.DenialReason.RESOURCE_EXHAUSTED`, never queued.
* :class:`CircuitBreaker` — wraps the budgeted MCMC sampling path
  (:func:`repro.resilience.budget.run_fail_closed`).  Repeated budget
  exhaustions mean the samplers cannot finish under current parameters or
  load; rather than burn a full deadline per query, the breaker trips and
  short-circuits to the fast conservative path — **deny** — until a
  cooldown passes, then lets one trial decision probe recovery
  (half-open) before closing again.

Both are deliberately *deny*-biased: the degraded mode of an auditor must
never be "answer without auditing".
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..exceptions import PrivacyParameterError
from ..types import AuditDecision, DenialReason

Clock = Callable[[], float]


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Starts full (a fresh user gets their burst immediately).  The clock is
    injectable so admission behaviour is deterministic under test — pass a
    :class:`~repro.resilience.faults.FaultClock`'s ``now``.

    Thread-safe on its own: refill + take is one read-modify-write, so it
    carries an internal lock rather than relying on every caller to
    serialize (the :class:`AdmissionController` does, but a bucket handed
    to other gating code must not silently lose tokens).
    """

    def __init__(self, rate: float, burst: int,
                 clock: Optional[Clock] = None) -> None:
        if rate <= 0:
            raise PrivacyParameterError("rate must be positive")
        if burst < 1:
            raise PrivacyParameterError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock: Clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._stamp = self._clock()

    def _refill_locked(self, now: float) -> None:
        self._tokens = min(self.burst,
                           self._tokens + max(0.0, now - self._stamp)
                           * self.rate)
        self._stamp = now

    def try_take(self) -> bool:
        """Take one token if available; never blocks."""
        now = self._clock()
        with self._lock:
            self._refill_locked(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def tokens(self) -> float:
        """Current token count (after refill), for introspection."""
        now = self._clock()
        with self._lock:
            self._refill_locked(now)
            return self._tokens


@dataclass(frozen=True)
class AdmissionPolicy:
    """Limits the :class:`AdmissionController` enforces.

    Parameters
    ----------
    user_rate:
        Sustained queries/second allowed per user (``None`` disables the
        rate gate).
    user_burst:
        Bucket capacity: how many queries a user may issue back-to-back
        before the sustained rate applies.
    max_in_flight:
        Bound on concurrently executing audits across *all* users
        (``None`` disables the concurrency gate).  Queries beyond the
        bound are denied, not queued — unbounded queueing only converts
        an outage into unbounded latency.
    clock:
        Injectable monotonic time source for the buckets.
    """

    user_rate: Optional[float] = None
    user_burst: int = 10
    max_in_flight: Optional[int] = None
    clock: Optional[Clock] = None

    def __post_init__(self) -> None:
        if self.user_rate is not None and self.user_rate <= 0:
            raise PrivacyParameterError("user_rate must be positive")
        if self.user_burst < 1:
            raise PrivacyParameterError("user_burst must be at least 1")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise PrivacyParameterError("max_in_flight must be at least 1")


class AdmissionController:
    """Fail-closed load shedding in front of the auditor.

    ``try_admit(user)`` either admits (returns ``None`` and counts the
    query in flight — the caller **must** pair it with :meth:`release`,
    typically in a ``finally``) or returns a ready-made
    ``RESOURCE_EXHAUSTED`` denial for the frontend to journal and return.
    Thread-safe: one lock guards the buckets and the in-flight counter.
    """

    def __init__(self, policy: Optional[AdmissionPolicy] = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self._in_flight = 0
        self._shed_rate = 0
        self._shed_in_flight = 0

    def try_admit(self, user: str) -> Optional[AuditDecision]:
        """Admit (``None``) or deny (a journallable decision), atomically.

        The in-flight gate is checked first: a server at capacity sheds
        load regardless of whose query arrives, so a single user's burst
        cannot starve the rate-compliant majority of admission checks.
        """
        policy = self.policy
        with self._lock:
            cap = policy.max_in_flight
            if cap is not None and self._in_flight >= cap:
                self._shed_in_flight += 1
                # audit: LEAK001 -- in-flight count and cap are operational
                # load metrics independent of any dataset value
                return AuditDecision.deny(
                    DenialReason.RESOURCE_EXHAUSTED,
                    f"server at capacity ({self._in_flight} audits in "
                    f"flight, limit {cap}); not queueing — retry later",
                )
            if policy.user_rate is not None:
                bucket = self._buckets.get(user)
                if bucket is None:
                    bucket = TokenBucket(policy.user_rate,
                                         policy.user_burst,
                                         clock=policy.clock)
                    self._buckets[user] = bucket
                if not bucket.try_take():
                    self._shed_rate += 1
                    # audit: LEAK001 -- rate and burst are public policy
                    # constants from OverloadPolicy
                    return AuditDecision.deny(
                        DenialReason.RESOURCE_EXHAUSTED,
                        f"per-user rate limit exceeded "
                        f"({policy.user_rate:g}/s sustained, burst "
                        f"{policy.user_burst}); retry later",
                    )
            self._in_flight += 1
            return None

    def release(self) -> None:
        """Mark one admitted query finished (pair with :meth:`try_admit`)."""
        with self._lock:
            if self._in_flight > 0:
                self._in_flight -= 1

    def in_flight(self) -> int:
        """Currently executing admitted queries."""
        with self._lock:
            return self._in_flight

    def shed_counts(self) -> Dict[str, int]:
        """How many queries each gate has shed (cumulative)."""
        with self._lock:
            return {"rate": self._shed_rate,
                    "in_flight": self._shed_in_flight}


class CircuitBreaker:
    """Trip to the conservative deny path after repeated exhaustions.

    State machine: **closed** (normal; consecutive ``RESOURCE_EXHAUSTED``
    outcomes are counted, any other outcome resets the count) →
    **open** after ``failure_threshold`` consecutive failures (every
    decision short-circuits to a denial without touching the samplers) →
    **half-open** once ``cooldown`` seconds pass (exactly the next
    decision runs the samplers as a probe) → **closed** on a non-exhausted
    probe, back to **open** on an exhausted one.

    The open-state short-circuit is itself a ``RESOURCE_EXHAUSTED``
    denial; it is *not* fed back into :meth:`observe` (the breaker would
    otherwise latch open on its own output).
    """

    def __init__(self, failure_threshold: int = 3, cooldown: float = 30.0,
                 clock: Optional[Clock] = None) -> None:
        if failure_threshold < 1:
            raise PrivacyParameterError(
                "failure_threshold must be at least 1")
        if cooldown <= 0:
            raise PrivacyParameterError("cooldown must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown = float(cooldown)
        self._clock: Clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self.trips = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"``."""
        with self._lock:
            return self._state

    def preflight(self) -> Optional[AuditDecision]:
        """Before sampling: ``None`` to proceed, or the short-circuit denial."""
        with self._lock:
            if self._state != "open":
                return None
            if self._clock() - self._opened_at >= self.cooldown:
                self._state = "half-open"  # admit one probe decision
                return None
            # audit: LEAK001 -- failure counter and cooldown are operational
            # breaker state independent of any dataset value
            return AuditDecision.deny(
                DenialReason.RESOURCE_EXHAUSTED,
                f"sampler circuit breaker open after {self._failures} "
                f"consecutive budget exhaustion(s); denying "
                f"conservatively until the {self.cooldown:g}s cooldown "
                f"passes",
            )

    def observe(self, decision: Optional[AuditDecision]) -> None:
        """Record a sampling outcome (``None`` = an answer was computed)."""
        failed = (decision is not None and decision.denied
                  and decision.reason == DenialReason.RESOURCE_EXHAUSTED)
        with self._lock:
            if failed:
                self._failures += 1
                if (self._state == "half-open"
                        or self._failures >= self.failure_threshold):
                    if self._state != "open":
                        self.trips += 1
                    self._state = "open"
                    self._opened_at = self._clock()
            else:
                self._failures = 0
                self._state = "closed"
