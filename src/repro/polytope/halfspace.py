"""Affine slices of a box: ``{x in [low, high]^n : A x = b}``.

The slice is parameterised by the null space of ``A``: every feasible point
is ``x = x0 + N z`` for a particular solution ``x0`` and an orthonormal null
basis ``N``.  Box constraints become half-spaces in ``z``-coordinates, where
chord intersection (needed by hit-and-run) is a per-coordinate ratio test.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import SamplingError

#: Coordinates whose direction component is at most this are treated as
#: non-moving during chord intersection (shared by the scalar chord and the
#: vectorized walk so both compute identical feasible ranges).
CHORD_TOL = 1e-12


class AffineSlice:
    """The feasible set ``{x in [low, high]^n : A x = b}``."""

    def __init__(self, n: int, low: float = 0.0, high: float = 1.0):
        if n <= 0:
            raise ValueError("n must be positive")
        if low >= high:
            raise ValueError("require low < high")
        self.n = n
        self.low = float(low)
        self.high = float(high)
        self._rows: list = []
        self._rhs: list = []
        self._null: Optional[np.ndarray] = None  # cached orthonormal basis

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------

    @property
    def num_constraints(self) -> int:
        """Number of equality constraints."""
        return len(self._rows)

    def add_equality(self, coefficients, value: float) -> None:
        """Append the constraint ``coefficients . x = value``."""
        row = np.asarray(coefficients, dtype=float)
        if row.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {row.shape}")
        self._rows.append(row)
        self._rhs.append(float(value))
        self._null = None

    def matrix(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(A, b)`` as arrays (possibly empty)."""
        if not self._rows:
            return np.zeros((0, self.n)), np.zeros(0)
        return np.vstack(self._rows), np.asarray(self._rhs)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def null_basis(self) -> np.ndarray:
        """Orthonormal basis of the null space of ``A`` (``n x d``)."""
        if self._null is None:
            a, _ = self.matrix()
            if a.shape[0] == 0:
                self._null = np.eye(self.n)
            else:
                _, s, vt = np.linalg.svd(a, full_matrices=True)
                rank = int(np.sum(s > 1e-10 * (s[0] if s.size else 1.0)))
                self._null = vt[rank:].T
        return self._null

    @property
    def dimension(self) -> int:
        """Dimension of the affine slice."""
        return self.null_basis().shape[1]

    def contains(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        """Feasibility test for a point in ``x``-space."""
        x = np.asarray(x, dtype=float)
        if np.any(x < self.low - tol) or np.any(x > self.high + tol):
            return False
        a, b = self.matrix()
        if a.shape[0] == 0:
            return True
        return bool(np.all(np.abs(a @ x - b) <= tol * max(1.0, self.n)))

    def chord(self, x: np.ndarray, direction: np.ndarray,
              tol: float = CHORD_TOL) -> Tuple[float, float]:
        """Feasible parameter range ``[t_lo, t_hi]`` for ``x + t * direction``.

        ``direction`` must lie in the null space of ``A`` (the caller draws
        it from :meth:`null_basis`), so only the box constraints matter.
        """
        d = np.asarray(direction, dtype=float)
        t_lo, t_hi = -np.inf, np.inf
        moving = np.abs(d) > tol
        if not np.any(moving):
            raise SamplingError("degenerate direction for chord computation")
        dm = d[moving]
        xm = x[moving]
        lo_t = (self.low - xm) / dm
        hi_t = (self.high - xm) / dm
        lower = np.minimum(lo_t, hi_t)
        upper = np.maximum(lo_t, hi_t)
        t_lo = float(np.max(lower))
        t_hi = float(np.min(upper))
        return t_lo, t_hi
