"""Convex-polytope sampling substrate.

The probabilistic sum auditor of [21] — the baseline the paper's Section 3.1
compares against — conditions a uniform prior on ``[low, high]^n`` on linear
equalities ``A x = b`` (the answered sum queries).  Sampling from that
conditional distribution means sampling uniformly from the slice of the
hypercube cut by an affine subspace; this package implements the standard
hit-and-run sampler over that slice.
"""

from .halfspace import AffineSlice
from .hit_and_run import HitAndRunSampler

__all__ = ["AffineSlice", "HitAndRunSampler"]
