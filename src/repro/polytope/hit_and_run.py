"""Hit-and-run sampling over an affine slice of a box.

Classic uniform sampler: from the current point, pick a uniform direction in
the slice's tangent space (the null space of ``A``), compute the feasible
chord through the box, and jump to a uniform point on it.  The chain's
stationary distribution is uniform over the slice.

The chain is inherently sequential, but almost none of its per-transition
work has to be: the serving hot path pre-draws the whole randomness block
for a batch of transitions (:func:`repro.rng.direction_block` /
:func:`repro.rng.uniform_block`) and walks the chain with direct ufunc
calls into preallocated buffers.  A scalar *reference* walk
(``vectorized=False``) consumes the **same** pre-drawn blocks through the
original per-step operations; the two modes are bitwise-identical (the
differential replay suite asserts this), so vectorization changes no
released decision bit.  Both modes keep the per-transition
:func:`~repro.resilience.faults.fault_site` and cooperative-cancellation
checkpoints, so budgets and fault drills see every transition.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..exceptions import SamplingError
from ..resilience.faults import fault_site
from ..rng import RngLike, as_generator, direction_block, scale_uniform, \
    uniform_block
from .halfspace import CHORD_TOL, AffineSlice


class HitAndRunSampler:
    """Uniform sampler over ``{x in [low, high]^n : A x = b}``.

    Parameters
    ----------
    slice_:
        The feasible region.
    start:
        A feasible starting point (e.g. the true dataset, which always
        satisfies its own answered queries).
    steps_per_sample:
        Chain steps between returned samples; defaults to ``4 * dimension``.
    checkpoint:
        Optional cooperative-cancellation hook invoked once per transition
        (e.g. :meth:`repro.resilience.budget.BudgetScope.checkpoint`); it
        may abort a runaway chain by raising
        :class:`~repro.exceptions.ResourceExhaustedError`.
    vectorized:
        ``True`` (default) walks transitions with batched draws and direct
        ufunc kernels; ``False`` is the scalar reference walk over the same
        pre-drawn randomness — bitwise-identical, kept for differential
        tests and as the benchmark baseline.
    """

    def __init__(self, slice_: AffineSlice, start: np.ndarray,
                 rng: RngLike = None,
                 steps_per_sample: Optional[int] = None,
                 checkpoint: Optional[Callable[[], None]] = None,
                 vectorized: bool = True):
        start = np.asarray(start, dtype=float)
        if not slice_.contains(start):
            raise SamplingError("start point is not feasible")
        self.slice = slice_
        self.state = start.copy()
        self._rng = as_generator(rng)
        self._checkpoint = checkpoint
        self.vectorized = vectorized
        dim = max(1, slice_.dimension)
        self.steps_per_sample = (
            4 * dim if steps_per_sample is None else steps_per_sample
        )

    def step(self) -> np.ndarray:
        """One hit-and-run transition; returns the new state.

        Draws per transition (direction, then chord position) — the
        original interleaved stream order, kept for direct single-step
        use.  The batched :meth:`sample`/:meth:`samples` paths pre-draw
        their blocks instead (all directions, then all positions).
        """
        fault_site("hit_and_run.step")
        if self._checkpoint is not None:
            self._checkpoint()
        basis = self.slice.null_basis()
        dim = basis.shape[1]
        if dim == 0:
            return self.state  # the slice is a single point
        z = self._rng.normal(size=dim)
        norm = float(np.linalg.norm(z))
        if norm == 0.0:  # pragma: no cover - measure zero
            return self.state
        direction = basis @ (z / norm)
        t_lo, t_hi = self.slice.chord(self.state, direction)
        if not t_lo <= t_hi:
            # Numerical corner: stay put rather than leave the region.
            return self.state
        t = float(self._rng.uniform(t_lo, t_hi))
        self.state = self.state + t * direction
        np.clip(self.state, self.slice.low, self.slice.high, out=self.state)
        return self.state

    # ------------------------------------------------------------------
    # Batched walks
    # ------------------------------------------------------------------

    def _advance(self, steps: int, record_every: Optional[int] = None,
                 out: Optional[np.ndarray] = None) -> None:
        """Walk ``steps`` transitions, copying the state into successive
        rows of ``out`` after every ``record_every``-th transition."""
        checkpoint = self._checkpoint
        basis = self.slice.null_basis()
        dim = basis.shape[1]
        if steps <= 0:
            return
        if dim == 0:
            recorded = 0
            for i in range(steps):
                fault_site("hit_and_run.step")
                if checkpoint is not None:
                    checkpoint()
                if record_every is not None and (i + 1) % record_every == 0:
                    out[recorded] = self.state
                    recorded += 1
            return
        # Canonical block order: all unit directions, then all positions.
        unit, norms = direction_block(self._rng, steps, dim)
        u_block = uniform_block(self._rng, steps)
        if self.vectorized:
            self._walk_vectorized(basis, unit, norms, u_block,
                                  record_every, out)
        else:
            self._walk_reference(basis, unit, norms, u_block,
                                 record_every, out)

    def _walk_reference(self, basis: np.ndarray, unit: np.ndarray,
                        norms: np.ndarray, u_block: np.ndarray,
                        record_every: Optional[int],
                        out: Optional[np.ndarray]) -> None:
        """The original per-step operations over pre-drawn randomness."""
        checkpoint = self._checkpoint
        recorded = 0
        for i in range(len(u_block)):
            fault_site("hit_and_run.step")
            if checkpoint is not None:
                checkpoint()
            if norms[i] != 0.0:  # zero norm: measure-zero degenerate draw
                direction = np.dot(basis, unit[i])
                t_lo, t_hi = self.slice.chord(self.state, direction)
                if t_lo <= t_hi:
                    t = float(scale_uniform(u_block[i], t_lo, t_hi))
                    self.state = self.state + t * direction
                    np.clip(self.state, self.slice.low, self.slice.high,
                            out=self.state)
            if record_every is not None and (i + 1) % record_every == 0:
                out[recorded] = self.state
                recorded += 1

    def _walk_vectorized(self, basis: np.ndarray, unit: np.ndarray,
                         norms: np.ndarray, u_block: np.ndarray,
                         record_every: Optional[int],
                         out: Optional[np.ndarray]) -> None:
        """Direct-ufunc walk into preallocated buffers.

        Bitwise-identical to :meth:`_walk_reference`: the chord quotients
        are the same elementwise operations (masked lanes are overwritten
        with ∓inf instead of compressed away), and min/max reductions are
        exact, so the trajectory cannot drift by even an ulp.
        """
        checkpoint = self._checkpoint
        state = self.state
        low, high = self.slice.low, self.slice.high
        n = self.slice.n
        d = np.empty(n)
        lo_t = np.empty(n)
        hi_t = np.empty(n)
        lower = np.empty(n)
        scratch = np.empty(n)
        still = np.empty(n, dtype=bool)
        recorded = 0
        with np.errstate(divide="ignore", invalid="ignore"):
            for i in range(len(u_block)):
                fault_site("hit_and_run.step")
                if checkpoint is not None:
                    checkpoint()
                if norms[i] != 0.0:
                    np.dot(basis, unit[i], out=d)
                    np.abs(d, out=scratch)
                    np.less_equal(scratch, CHORD_TOL, out=still)
                    if still.all():
                        raise SamplingError(
                            "degenerate direction for chord computation"
                        )
                    np.subtract(low, state, out=lo_t)
                    np.divide(lo_t, d, out=lo_t)
                    np.subtract(high, state, out=hi_t)
                    np.divide(hi_t, d, out=hi_t)
                    np.minimum(lo_t, hi_t, out=lower)
                    np.maximum(lo_t, hi_t, out=hi_t)
                    np.copyto(lower, -np.inf, where=still)
                    np.copyto(hi_t, np.inf, where=still)
                    t_lo = np.maximum.reduce(lower)
                    t_hi = np.minimum.reduce(hi_t)
                    if t_lo <= t_hi:
                        t = scale_uniform(u_block[i], t_lo, t_hi)
                        np.multiply(d, t, out=d)
                        np.add(state, d, out=state)
                        np.maximum(state, low, out=state)
                        np.minimum(state, high, out=state)
                if record_every is not None and (i + 1) % record_every == 0:
                    out[recorded] = state
                    recorded += 1

    # ------------------------------------------------------------------
    # Sampling API
    # ------------------------------------------------------------------

    def sample(self) -> np.ndarray:
        """Advance ``steps_per_sample`` transitions and return a copy."""
        self._advance(self.steps_per_sample)
        return self.state.copy()

    def samples(self, count: int) -> np.ndarray:
        """``count`` thinned samples, stacked ``(count, n)``.

        Draws the whole randomness block for ``count * steps_per_sample``
        transitions up front (all directions, then all positions).  Note
        the block layout makes the stream a function of the *call*, not
        the transition index: one ``samples(n)`` consumes its randomness
        in a different interleaving than ``n`` ``sample()`` calls, so the
        two produce different (equally valid) trajectories.  Within a
        call, vectorized and reference modes are bitwise-identical.
        """
        out = np.empty((count, self.slice.n))
        if count > 0:
            self._advance(count * self.steps_per_sample,
                          record_every=self.steps_per_sample, out=out)
        return out

    # ------------------------------------------------------------------
    # Ensemble sampling (the posterior-estimation hot path)
    # ------------------------------------------------------------------

    def samples_ensemble(self, count: int,
                         steps: Optional[int] = None) -> np.ndarray:
        """``count`` *independent* chains from the current state, ``(count, n)``.

        Every chain is advanced ``steps`` transitions from ``self.state``
        (default ``2 * steps_per_sample``): the chains are mutually
        independent instead of autocorrelated, and the walk vectorizes
        **across chains** — each lockstep transition processes the whole
        ``(count, n)`` ensemble with a handful of ufunc calls.  Because
        every chain shares the seed state, the finite-burn-in bias does
        not average out the way a sequential chain's accumulated mixing
        does; doubling the per-chain budget brings the bucket-probability
        error below the sequential thinned estimator's (measured in the
        statistical suite), at a fraction of its wall-clock cost.  This
        is how the probabilistic auditors estimate posterior bucket
        probabilities.  ``self.state`` is not advanced.

        Cancellation checkpoints and fault sites still fire once per
        underlying transition (``count * steps`` in total), so budget
        step accounting tracks real MCMC work.
        """
        n = self.slice.n
        if count <= 0:
            return np.empty((0, n))
        checkpoint = self._checkpoint
        basis = self.slice.null_basis()
        dim = basis.shape[1]
        if steps is None:
            steps = 2 * self.steps_per_sample
        if dim == 0:
            for _ in range(count * steps):
                fault_site("hit_and_run.step")
                if checkpoint is not None:
                    checkpoint()
            return np.tile(self.state, (count, 1))
        # Canonical block order (step-major): chain c's step-s direction is
        # row ``s * count + c``; positions follow the same layout.
        unit, norms = direction_block(self._rng, steps * count, dim)
        u_block = uniform_block(self._rng, steps * count)
        # Direction preparation is shared by both modes (a single GEMM and
        # a GEMV differ in summation order, so the rows must come from the
        # same kernel to stay bitwise-identical).
        directions = unit @ basis.T
        zero = norms == 0.0
        if zero.any():  # pragma: no cover - measure zero
            directions[zero] = 0.0
        if self.vectorized:
            return self._ensemble_vectorized(directions, zero, u_block,
                                             count, steps)
        return self._ensemble_reference(directions, zero, u_block,
                                        count, steps)

    def _ensemble_reference(self, directions: np.ndarray, zero: np.ndarray,
                            u_block: np.ndarray, count: int,
                            steps: int) -> np.ndarray:
        """Chain-by-chain scalar walk over the shared direction block."""
        checkpoint = self._checkpoint
        out = np.empty((count, self.slice.n))
        for c in range(count):
            state = self.state.copy()
            for s in range(steps):
                fault_site("hit_and_run.step")
                if checkpoint is not None:
                    checkpoint()
                row = s * count + c
                if zero[row]:  # pragma: no cover - measure zero
                    continue
                direction = directions[row]
                t_lo, t_hi = self.slice.chord(state, direction)
                if t_lo <= t_hi:
                    t = float(scale_uniform(u_block[row], t_lo, t_hi))
                    state = state + t * direction
                    np.clip(state, self.slice.low, self.slice.high,
                            out=state)
            out[c] = state
        return out

    def _ensemble_vectorized(self, directions: np.ndarray, zero: np.ndarray,
                             u_block: np.ndarray, count: int,
                             steps: int) -> np.ndarray:
        """Lockstep walk of all chains; bitwise-identical to the reference
        (elementwise chord quotients, exact min/max reductions, and a
        ``t = 0`` no-op jump for chains whose chord is empty this step)."""
        checkpoint = self._checkpoint
        low, high = self.slice.low, self.slice.high
        n = self.slice.n
        states = np.tile(self.state, (count, 1))
        lo_t = np.empty((count, n))
        hi_t = np.empty((count, n))
        lower = np.empty((count, n))
        absd = np.empty((count, n))
        still = np.empty((count, n), dtype=bool)
        with np.errstate(divide="ignore", invalid="ignore"):
            for s in range(steps):
                # one fault site / checkpoint per underlying transition, so
                # budget step accounting matches the scalar reference
                for _ in range(count):
                    fault_site("hit_and_run.step")
                    if checkpoint is not None:
                        checkpoint()
                block = directions[s * count:(s + 1) * count]
                alive = ~zero[s * count:(s + 1) * count]
                np.abs(block, out=absd)
                np.less_equal(absd, CHORD_TOL, out=still)
                if np.any(still.all(axis=1) & alive):
                    raise SamplingError(
                        "degenerate direction for chord computation"
                    )
                np.subtract(low, states, out=lo_t)
                np.divide(lo_t, block, out=lo_t)
                np.subtract(high, states, out=hi_t)
                np.divide(hi_t, block, out=hi_t)
                np.minimum(lo_t, hi_t, out=lower)
                np.maximum(lo_t, hi_t, out=hi_t)
                np.copyto(lower, -np.inf, where=still)
                np.copyto(hi_t, np.inf, where=still)
                t_lo = lower.max(axis=1)
                t_hi = hi_t.min(axis=1)
                valid = (t_lo <= t_hi) & alive
                t = scale_uniform(u_block[s * count:(s + 1) * count],
                                  t_lo, t_hi)
                np.copyto(t, 0.0, where=~valid)
                states += t[:, None] * block
                np.maximum(states, low, out=states)
                np.minimum(states, high, out=states)
        return states
