"""Hit-and-run sampling over an affine slice of a box.

Classic uniform sampler: from the current point, pick a uniform direction in
the slice's tangent space (the null space of ``A``), compute the feasible
chord through the box, and jump to a uniform point on it.  The chain's
stationary distribution is uniform over the slice.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..exceptions import SamplingError
from ..resilience.faults import fault_site
from ..rng import RngLike, as_generator
from .halfspace import AffineSlice


class HitAndRunSampler:
    """Uniform sampler over ``{x in [low, high]^n : A x = b}``.

    Parameters
    ----------
    slice_:
        The feasible region.
    start:
        A feasible starting point (e.g. the true dataset, which always
        satisfies its own answered queries).
    steps_per_sample:
        Chain steps between returned samples; defaults to ``4 * dimension``.
    checkpoint:
        Optional cooperative-cancellation hook invoked once per transition
        (e.g. :meth:`repro.resilience.budget.BudgetScope.checkpoint`); it
        may abort a runaway chain by raising
        :class:`~repro.exceptions.ResourceExhaustedError`.
    """

    def __init__(self, slice_: AffineSlice, start: np.ndarray,
                 rng: RngLike = None,
                 steps_per_sample: Optional[int] = None,
                 checkpoint: Optional[Callable[[], None]] = None):
        start = np.asarray(start, dtype=float)
        if not slice_.contains(start):
            raise SamplingError("start point is not feasible")
        self.slice = slice_
        self.state = start.copy()
        self._rng = as_generator(rng)
        self._checkpoint = checkpoint
        dim = max(1, slice_.dimension)
        self.steps_per_sample = (
            4 * dim if steps_per_sample is None else steps_per_sample
        )

    def step(self) -> np.ndarray:
        """One hit-and-run transition; returns the new state."""
        fault_site("hit_and_run.step")
        if self._checkpoint is not None:
            self._checkpoint()
        basis = self.slice.null_basis()
        dim = basis.shape[1]
        if dim == 0:
            return self.state  # the slice is a single point
        z = self._rng.normal(size=dim)
        norm = float(np.linalg.norm(z))
        if norm == 0.0:  # pragma: no cover - measure zero
            return self.state
        direction = basis @ (z / norm)
        t_lo, t_hi = self.slice.chord(self.state, direction)
        if not t_lo <= t_hi:
            # Numerical corner: stay put rather than leave the region.
            return self.state
        t = float(self._rng.uniform(t_lo, t_hi))
        self.state = self.state + t * direction
        np.clip(self.state, self.slice.low, self.slice.high, out=self.state)
        return self.state

    def sample(self) -> np.ndarray:
        """Advance ``steps_per_sample`` transitions and return a copy."""
        for _ in range(self.steps_per_sample):
            self.step()
        return self.state.copy()

    def samples(self, count: int) -> np.ndarray:
        """``count`` thinned samples, stacked ``(count, n)``."""
        return np.vstack([self.sample() for _ in range(count)])
