"""Utility measurement: how many queries does an auditing scheme answer?

Section 5 analyses the *time to first denial* for the classical sum auditor
(``Theta(n)``, Theorems 6–7); Section 6 measures denial-probability curves
under several workloads.  This package provides the metric machinery, the
theoretical bound functions, and the experiment drivers the benchmarks and
examples share.
"""

from .experiments import (
    estimate_denial_curve,
    run_max_denial_trial,
    run_range_trial,
    run_sum_denial_trial,
    run_update_trial,
    time_to_first_denial_vs_size,
)
from .metrics import denial_curve, first_denial_index, moving_average
from .parallel import estimate_denial_curve_parallel, run_trials
from .price_of_simulatability import (
    SimulatabilityPrice,
    measure_price_of_simulatability,
)
from .theory import (
    rank_growth_probability,
    theorem6_lower_bound,
    theorem7_upper_bound,
)

__all__ = [
    "SimulatabilityPrice",
    "denial_curve",
    "measure_price_of_simulatability",
    "estimate_denial_curve_parallel",
    "run_trials",
    "estimate_denial_curve",
    "first_denial_index",
    "moving_average",
    "rank_growth_probability",
    "run_max_denial_trial",
    "run_range_trial",
    "run_sum_denial_trial",
    "run_update_trial",
    "theorem6_lower_bound",
    "theorem7_upper_bound",
    "time_to_first_denial_vs_size",
]
