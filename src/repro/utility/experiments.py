"""Experiment drivers behind the Section 6 figures.

Each ``run_*_trial`` function plays one full query stream against a fresh
auditor and returns the per-query denial flags;
:func:`estimate_denial_curve` averages many trials into the
denial-probability curves the paper plots.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from ..auditors.max_classic import MaxClassicAuditor
from ..auditors.sum_classic import SumClassicAuditor
from ..rng import RngLike, as_generator, spawn
from ..sdb.dataset import Dataset
from ..types import AggregateKind
from ..workloads.random_subsets import random_query_stream
from ..workloads.range_queries import range_query_stream
from ..workloads.update_stream import interleave_updates
from .metrics import denial_curve, first_denial_index

TrialFn = Callable[[np.random.Generator], List[bool]]


def run_sum_denial_trial(n: int, horizon: int,
                         rng: RngLike = None,
                         backend: str = "modular") -> List[bool]:
    """One Figure 1 / Figure 2 Plot 1 trial: random sum queries, static DB."""
    gen = as_generator(rng)
    dataset = Dataset.uniform(n, rng=gen, duplicate_free=False)
    auditor = SumClassicAuditor(dataset, backend=backend)
    stream = random_query_stream(n, horizon, AggregateKind.SUM, rng=gen)
    return denial_curve(auditor, stream)


def run_update_trial(n: int, horizon: int, update_every: int = 10,
                     rng: RngLike = None,
                     backend: str = "modular") -> List[bool]:
    """One Figure 2 Plot 2 trial: a modification every ``update_every``
    queries (versioned sum auditing)."""
    gen = as_generator(rng)
    dataset = Dataset.uniform(n, rng=gen, duplicate_free=False)
    auditor = SumClassicAuditor(dataset, backend=backend)
    queries = random_query_stream(n, horizon, AggregateKind.SUM, rng=gen)
    stream = interleave_updates(queries, n, update_every=update_every,
                                rng=gen)
    return denial_curve(auditor, stream)


def run_range_trial(n: int, horizon: int, rng: RngLike = None,
                    min_span: int = 50, max_span: int = 100,
                    backend: str = "modular") -> List[bool]:
    """One Figure 2 Plot 3 trial: 1-d range sum queries of width 50-100."""
    gen = as_generator(rng)
    dataset = Dataset.uniform(n, rng=gen, duplicate_free=False)
    auditor = SumClassicAuditor(dataset, backend=backend)
    stream = range_query_stream(n, horizon, rng=gen, min_span=min_span,
                                max_span=max_span)
    return denial_curve(auditor, stream)


def run_max_denial_trial(n: int, horizon: int,
                         rng: RngLike = None) -> List[bool]:
    """One Figure 3 trial: random max queries against the classical max
    auditor of [21]."""
    gen = as_generator(rng)
    dataset = Dataset.uniform(n, rng=gen, duplicate_free=True)
    auditor = MaxClassicAuditor(dataset)
    stream = random_query_stream(n, horizon, AggregateKind.MAX, rng=gen)
    return denial_curve(auditor, stream)


def estimate_denial_curve(trial_fn: TrialFn, trials: int,
                          rng: RngLike = None) -> np.ndarray:
    """Average per-query denial probability across independent trials."""
    if trials < 1:
        raise ValueError("trials must be positive")
    gen = as_generator(rng)
    curves = [np.asarray(trial_fn(child), dtype=float)
              for child in spawn(gen, trials)]
    horizon = min(len(c) for c in curves)
    return np.mean([c[:horizon] for c in curves], axis=0)


def time_to_first_denial_vs_size(sizes: Sequence[int], trials: int,
                                 rng: RngLike = None,
                                 horizon_factor: float = 2.0,
                                 backend: str = "modular"
                                 ) -> Dict[int, float]:
    """Figure 1 driver: mean time to first denial per database size."""
    gen = as_generator(rng)
    out: Dict[int, float] = {}
    for n in sizes:
        horizon = int(horizon_factor * n) + 8
        times: List[float] = []
        for child in spawn(gen, trials):
            flags = run_sum_denial_trial(n, horizon, rng=child,
                                         backend=backend)
            first = first_denial_index(flags)
            times.append(float(first) if first is not None else float(horizon))
        out[n] = float(np.mean(times))
    return out
