"""Denial metrics over query streams."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..sdb.updates import Modify


def denial_curve(auditor, stream: Iterable, engine=None) -> List[bool]:
    """Audit a stream; return one denial flag per *query*.

    Stream items are :class:`~repro.types.Query` objects, optionally
    interleaved with :class:`~repro.sdb.updates.Modify` events (which require
    an ``engine`` — a :class:`~repro.sdb.engine.StatisticalDatabase` — or an
    update-aware auditor to apply them to).
    """
    flags: List[bool] = []
    for item in stream:
        if isinstance(item, Modify):
            if engine is not None:
                engine.apply(item)
            else:
                auditor.dataset.set_value(item.index, item.value)
                auditor.apply_update(item)
            continue
        decision = auditor.audit(item)
        flags.append(decision.denied)
    return flags


def first_denial_index(flags: Sequence[bool]) -> Optional[int]:
    """1-based index of the first denial, or None if none occurred."""
    for idx, denied in enumerate(flags, start=1):
        if denied:
            return idx
    return None


def moving_average(values: Sequence[float], window: int) -> np.ndarray:
    """Simple moving average (edge-truncated) for smoothing denial curves."""
    if window < 1:
        raise ValueError("window must be positive")
    arr = np.asarray(values, dtype=float)
    if window == 1 or arr.size == 0:
        return arr
    kernel = np.ones(min(window, arr.size)) / min(window, arr.size)
    return np.convolve(arr, kernel, mode="same")
