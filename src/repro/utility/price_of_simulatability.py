"""The price of simulatability (paper §7).

"Simulatability is conservative and could deny more often than necessary.
One could try to analyze the *price of simulatability* — how many queries
were denied when they could have been safely answered because we did not
look at the true answers when choosing to deny."

This driver replays a query stream against a simulatable auditor and, at
every denial, asks the auditor's (non-simulatable, analysis-only)
``hindsight_breach`` diagnostic whether the *true* answer would actually
have disclosed a value given the same audit state.  Denials whose true
answer was harmless are the price paid for keeping denials data-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..types import Query


@dataclass
class SimulatabilityPrice:
    """Tally of one replayed stream."""

    answered: int = 0
    necessary_denials: int = 0    # true answer would have disclosed a value
    conservative_denials: int = 0  # denied only for simulatability

    @property
    def denials(self) -> int:
        """Total denials."""
        return self.necessary_denials + self.conservative_denials

    @property
    def price(self) -> float:
        """Fraction of denials that were conservative (0 when no denials)."""
        if self.denials == 0:
            return 0.0
        return self.conservative_denials / self.denials


def measure_price_of_simulatability(auditor, stream: Iterable[Query]
                                    ) -> SimulatabilityPrice:
    """Replay ``stream`` through ``auditor`` and classify every denial.

    ``auditor`` must expose ``hindsight_breach(query)`` (the classical sum,
    max, and max/min auditors all do).
    """
    tally = SimulatabilityPrice()
    for query in stream:
        hindsight = auditor.hindsight_breach(query)
        decision = auditor.audit(query)
        if decision.answered:
            tally.answered += 1
        elif hindsight:
            tally.necessary_denials += 1
        else:
            tally.conservative_denials += 1
    return tally
