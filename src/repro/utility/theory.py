"""Theoretical bounds on the time to first denial (§5, Theorems 6–7).

* Theorem 6: ``E[T_denial] >= (n/4)(1 - o(1))`` — with probability at least
  ``(1 - 1/n^2)^2`` no denial occurs among the first
  ``n/4 - sqrt(n ln n)`` random sum queries;
* Theorem 7: ``E[T_denial] <= n + lg n + 1``;
* Lemma 4 machinery: a rank-``l`` hyperplane meets the Boolean cube
  ``B^m`` in at most ``2^l`` points, so a fresh random 0-1 row raises the
  rank with probability at least ``1 - 2^(l - m) >= 1/2``.
"""

from __future__ import annotations

import math


def theorem6_lower_bound(n: int) -> float:
    """The high-probability denial-free horizon ``n/4 - sqrt(n ln n)``."""
    if n < 2:
        return 0.0
    return max(0.0, n / 4.0 - math.sqrt(n * math.log(n)))


def theorem7_upper_bound(n: int) -> float:
    """The Theorem 7 expectation bound ``n + lg n + 1``."""
    if n < 1:
        raise ValueError("n must be positive")
    return n + math.log2(n) + 1.0


def rank_growth_probability(current_rank: int, m: int) -> float:
    """Lower bound on the chance a random 0-1 ``m``-vector raises the rank.

    From Lemma 4: at most ``2^l`` cube points lie on a rank-``l`` hyperplane,
    so the growth probability is at least ``1 - 2^(l - m)``.
    """
    if not 0 <= current_rank <= m:
        raise ValueError("need 0 <= current_rank <= m")
    return 1.0 - 2.0 ** (current_rank - m)


def expected_queries_to_rank(m: int) -> float:
    """Coupon-style upper bound on queries needed to reach full rank ``m``.

    Each query independently raises the rank with probability at least 1/2
    until rank ``m`` (stochastic dominance over fair-coin heads), so at most
    ``2m`` queries are expected; the exact dominated expectation is
    ``sum_l 1 / (1 - 2^(l - m))``.
    """
    if m < 1:
        raise ValueError("m must be positive")
    return sum(1.0 / (1.0 - 2.0 ** (l - m)) for l in range(m))
