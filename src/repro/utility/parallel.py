"""Multiprocess trial execution for paper-scale experiment sweeps.

The Figure 1/2/3 experiments average many independent trials; at the paper's
n = 500 a single sum-auditing trial takes seconds, so the sweeps are
embarrassingly parallel.  :func:`run_trials` fans trials out over worker
processes with *deterministic per-trial seeds* (the same seeds the serial
driver :func:`repro.utility.experiments.estimate_denial_curve` would spawn),
so serial and parallel runs produce identical curves.

Worker functions travel through a token-keyed registry rather than a single
module global: each pool registers its function under a fresh token, ships
the token through ``initializer``/``initargs``, and unregisters on teardown.
Nested or back-to-back sweeps therefore can never observe a stale or
clobbered worker function, and workers fail loudly (``KeyError``) rather
than silently running the wrong trial if a payload outlives its pool.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..rng import RngLike, as_generator

# Token-keyed registry: keeps worker payloads picklable (workers re-import
# this module and look the function up by integer token) while letting
# concurrent/nested pools coexist.  In the parent the registry holds one
# entry per live pool; in a spawned worker it holds exactly the entry its
# pool's initializer installed.
_WORKER_REGISTRY: Dict[int, Callable] = {}
_REGISTRY_LOCK = threading.Lock()
_TOKEN_COUNTER = itertools.count(1)


def _register_worker_fn(fn: Callable) -> int:
    """Bind ``fn`` under a fresh token (parent side)."""
    token = next(_TOKEN_COUNTER)
    with _REGISTRY_LOCK:
        _WORKER_REGISTRY[token] = fn
    return token


def _unregister_worker_fn(token: int) -> None:
    """Drop a token on pool teardown (parent side)."""
    with _REGISTRY_LOCK:
        _WORKER_REGISTRY.pop(token, None)


def _init_worker(token: int, fn: Callable) -> None:
    """Pool initializer: install ``fn`` under ``token`` in this worker."""
    with _REGISTRY_LOCK:
        _WORKER_REGISTRY[token] = fn


def _run_one(payload: Tuple[int, int]):
    token, seed = payload
    fn = _WORKER_REGISTRY[token]
    return fn(np.random.default_rng(seed))


def _run_one_config(payload: Tuple[int, object, int]):
    token, config, seed = payload
    fn = _WORKER_REGISTRY[token]
    return fn(config, np.random.default_rng(seed))


def trial_seeds(rng: RngLike, trials: int) -> List[int]:
    """The deterministic per-trial seeds (shared with the serial path)."""
    gen = as_generator(rng)
    return [int(s) for s in gen.integers(0, 2**63 - 1, size=trials)]


def run_trials(trial_fn: Callable[[np.random.Generator], object],
               trials: int, rng: RngLike = None,
               processes: Optional[int] = None) -> List[object]:
    """Run ``trial_fn(child_rng)`` for ``trials`` independent children.

    ``processes=None`` or ``1`` runs serially; otherwise a process pool is
    used.  ``trial_fn`` must be picklable (a module-level function or
    functools.partial of one) when ``processes > 1``.  Safe to call
    re-entrantly (a trial function may itself run a serial sweep) and
    back-to-back with different functions: each pool's worker binding is
    private to its registry token.
    """
    seeds = trial_seeds(rng, trials)
    if not processes or processes <= 1 or trials == 1:
        return [trial_fn(np.random.default_rng(seed)) for seed in seeds]
    processes = min(processes, trials)
    ctx = multiprocessing.get_context("spawn")
    token = _register_worker_fn(trial_fn)
    try:
        with ctx.Pool(processes, initializer=_init_worker,
                      initargs=(token, trial_fn)) as pool:
            return pool.map(_run_one, [(token, seed) for seed in seeds])
    finally:
        _unregister_worker_fn(token)


def run_sweep(sweep_fn: Callable[[object, np.random.Generator], object],
              configs: Sequence[object], trials: int, rng: RngLike = None,
              processes: Optional[int] = None) -> Dict[int, List[object]]:
    """Fan a whole experiment sweep — ``configs x trials`` — across processes.

    Every ``(config, trial)`` cell gets a deterministic seed derived once
    from ``rng`` in config-major order, so the result is independent of
    worker count and scheduling: serial (``processes<=1``) and parallel
    runs are identical.  Returns ``{config_index: [trial results]}``.

    ``sweep_fn(config, child_rng)`` must be picklable for ``processes > 1``
    (a module-level function or a :func:`functools.partial` of one).
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    seeds = trial_seeds(rng, len(configs) * trials)
    cells = [(config, seeds[i * trials + t])
             for i, config in enumerate(configs)
             for t in range(trials)]
    if not processes or processes <= 1 or len(cells) == 1:
        flat = [sweep_fn(config, np.random.default_rng(seed))
                for config, seed in cells]
    else:
        processes = min(processes, len(cells))
        ctx = multiprocessing.get_context("spawn")
        token = _register_worker_fn(sweep_fn)
        try:
            with ctx.Pool(processes, initializer=_init_worker,
                          initargs=(token, sweep_fn)) as pool:
                flat = pool.map(_run_one_config,
                                [(token, config, seed)
                                 for config, seed in cells])
        finally:
            _unregister_worker_fn(token)
    return {i: flat[i * trials:(i + 1) * trials]
            for i in range(len(configs))}


def estimate_denial_curve_parallel(trial_fn, trials: int, rng: RngLike = None,
                                   processes: Optional[int] = None
                                   ) -> np.ndarray:
    """Parallel counterpart of
    :func:`repro.utility.experiments.estimate_denial_curve` — identical
    output for identical ``rng``."""
    curves = [np.asarray(flags, dtype=float)
              for flags in run_trials(trial_fn, trials, rng=rng,
                                      processes=processes)]
    horizon = min(len(c) for c in curves)
    return np.mean([c[:horizon] for c in curves], axis=0)
