"""Multiprocess trial execution for paper-scale experiment sweeps.

The Figure 1/2/3 experiments average many independent trials; at the paper's
n = 500 a single sum-auditing trial takes seconds, so the sweeps are
embarrassingly parallel.  :func:`run_trials` fans trials out over worker
processes with *deterministic per-trial seeds* (the same seeds the serial
driver :func:`repro.utility.experiments.estimate_denial_curve` would spawn),
so serial and parallel runs produce identical curves.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..rng import RngLike, as_generator

# A module-level registry keyed by name keeps the worker payload picklable
# even for closures defined in __main__ (the worker re-imports this module).
_WORKER_FN: Optional[Callable] = None


def _init_worker(fn):
    global _WORKER_FN
    _WORKER_FN = fn


def _run_one(seed: int):
    assert _WORKER_FN is not None
    return _WORKER_FN(np.random.default_rng(seed))


def _run_one_config(payload: Tuple[object, int]):
    assert _WORKER_FN is not None
    config, seed = payload
    return _WORKER_FN(config, np.random.default_rng(seed))


def trial_seeds(rng: RngLike, trials: int) -> List[int]:
    """The deterministic per-trial seeds (shared with the serial path)."""
    gen = as_generator(rng)
    return [int(s) for s in gen.integers(0, 2**63 - 1, size=trials)]


def run_trials(trial_fn: Callable[[np.random.Generator], object],
               trials: int, rng: RngLike = None,
               processes: Optional[int] = None) -> List[object]:
    """Run ``trial_fn(child_rng)`` for ``trials`` independent children.

    ``processes=None`` or ``1`` runs serially; otherwise a process pool is
    used.  ``trial_fn`` must be picklable (a module-level function or
    functools.partial of one) when ``processes > 1``.
    """
    seeds = trial_seeds(rng, trials)
    if not processes or processes <= 1 or trials == 1:
        return [trial_fn(np.random.default_rng(seed)) for seed in seeds]
    processes = min(processes, trials)
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes, initializer=_init_worker,
                  initargs=(trial_fn,)) as pool:
        return pool.map(_run_one, seeds)


def run_sweep(sweep_fn: Callable[[object, np.random.Generator], object],
              configs: Sequence[object], trials: int, rng: RngLike = None,
              processes: Optional[int] = None) -> Dict[int, List[object]]:
    """Fan a whole experiment sweep — ``configs x trials`` — across processes.

    Every ``(config, trial)`` cell gets a deterministic seed derived once
    from ``rng`` in config-major order, so the result is independent of
    worker count and scheduling: serial (``processes<=1``) and parallel
    runs are identical.  Returns ``{config_index: [trial results]}``.

    ``sweep_fn(config, child_rng)`` must be picklable for ``processes > 1``
    (a module-level function or a :func:`functools.partial` of one).
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    seeds = trial_seeds(rng, len(configs) * trials)
    payloads = [(config, seeds[i * trials + t])
                for i, config in enumerate(configs)
                for t in range(trials)]
    if not processes or processes <= 1 or len(payloads) == 1:
        flat = [sweep_fn(config, np.random.default_rng(seed))
                for config, seed in payloads]
    else:
        processes = min(processes, len(payloads))
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(processes, initializer=_init_worker,
                      initargs=(sweep_fn,)) as pool:
            flat = pool.map(_run_one_config, payloads)
    return {i: flat[i * trials:(i + 1) * trials]
            for i in range(len(configs))}


def estimate_denial_curve_parallel(trial_fn, trials: int, rng: RngLike = None,
                                   processes: Optional[int] = None
                                   ) -> np.ndarray:
    """Parallel counterpart of
    :func:`repro.utility.experiments.estimate_denial_curve` — identical
    output for identical ``rng``."""
    curves = [np.asarray(flags, dtype=float)
              for flags in run_trials(trial_fn, trials, rng=rng,
                                      processes=processes)]
    horizon = min(len(c) for c in curves)
    return np.mean([c[:horizon] for c in curves], axis=0)
