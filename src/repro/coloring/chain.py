"""The Markov chain ``M`` over valid colourings (paper, Section 3.2).

Each step: pick a node ``v`` uniformly; propose a colour from ``S(v)`` with
probability proportional to ``ℓ_colour``; accept iff the proposal keeps the
colouring valid (otherwise stay).  Lemma 2 shows the unique stationary
distribution is ``P~(c) ∝ Π_v ℓ_{c(v)}`` whenever ``|S(v)| >= d_v + 2`` for
all ``v``; Lemma 3 gives ``O(k log k)`` mixing under the stronger condition
``m > Δ(1 + 2 p_max / p_min)``.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

import numpy as np

from ..exceptions import ColoringError
from ..resilience.faults import fault_site
from ..rng import (
    RngLike,
    as_generator,
    choice_cdf,
    choice_from_cdf,
    integer_block,
    uniform_block,
)
from .graph import Coloring, ColoringGraph

#: Below this many transitions the per-call overhead of the batched
#: searchsorted resolution (np.unique + boolean masks) exceeds its gain,
#: so :meth:`ColoringChain.run` resolves proposals scalar-wise.  Both
#: resolutions are bitwise-identical, so the crossover is purely a
#: performance heuristic.
BATCH_MIN_STEPS = 64


class ColoringChain:
    """Runs the single-site chain over valid colourings of ``graph``.

    ``checkpoint`` is an optional cooperative-cancellation hook invoked
    once per transition (see
    :meth:`repro.resilience.budget.BudgetScope.checkpoint`).

    :meth:`run` pre-draws its randomness in a canonical block order (all
    node picks, then all proposal positions) and resolves proposals from
    per-node cumulative tables; with ``vectorized=True`` (the default)
    the searchsorted lookups are batched per node, with
    ``vectorized=False`` they are resolved one transition at a time from
    the *same* blocks — the two modes are bitwise-identical, which the
    differential suite asserts.  :meth:`step` keeps the original
    per-transition draw order for callers that interleave other draws.
    """

    def __init__(self, graph: ColoringGraph, initial: Coloring,
                 rng: RngLike = None,
                 checkpoint: Optional[Callable[[], None]] = None,
                 vectorized: bool = True):
        if not graph.is_valid(initial):
            raise ColoringError("initial coloring is not valid")
        self.graph = graph
        self.state: Coloring = dict(initial)
        self._rng = as_generator(rng)
        self._checkpoint = checkpoint
        self.vectorized = vectorized
        # Pre-compute per-node colour lists, proposal probabilities, the
        # cumulative tables ``Generator.choice`` would build per call, and
        # adjacency lists (so the accept loop never re-walks the graph).
        self._colors: List[List[int]] = []
        self._probs: List[np.ndarray] = []
        self._cdfs: List[Optional[np.ndarray]] = []
        self._neighbors: List[List[int]] = []
        for node in graph.nodes:
            colours = sorted(node.elements)
            weights = np.array(
                [self._finite_weight(graph.weights[c]) for c in colours],
                dtype=float,
            )
            self._colors.append(colours)
            self._probs.append(weights / weights.sum())
            self._cdfs.append(
                choice_cdf(weights) if len(colours) > 1 else None
            )
            self._neighbors.append(list(graph.neighbors(node.node_id)))

    @staticmethod
    def _finite_weight(w: float) -> float:
        # Infinite weights belong to exactly-determined elements, which only
        # occur in singleton predicates where the choice is forced anyway.
        return w if math.isfinite(w) else 1.0

    # ------------------------------------------------------------------

    def step(self) -> bool:
        """One chain transition; returns True when the colour changed."""
        fault_site("coloring.step")
        if self._checkpoint is not None:
            self._checkpoint()
        graph = self.graph
        k = graph.k
        if k == 0:
            return False
        v = int(self._rng.integers(k))
        colours = self._colors[v]
        if len(colours) == 1:
            return False
        proposal = colours[
            int(self._rng.choice(len(colours), p=self._probs[v]))
        ]
        if proposal == self.state[v]:
            return False
        for nb in graph.neighbors(v):
            if self.state[nb] == proposal:
                return False  # invalid: keep the old colour
        self.state[v] = proposal
        return True

    def run(self, steps: int) -> Coloring:
        """Advance ``steps`` transitions and return the current colouring.

        Draws the whole randomness block up front (node picks, then
        proposal positions — one position per transition whether or not
        the picked node has a choice to make), resolves proposals from
        the precomputed per-node cumulative tables, and applies the
        accept/reject sweep sequentially.  Fault sites and cancellation
        checkpoints still fire once per transition.
        """
        if steps <= 0:
            return dict(self.state)
        checkpoint = self._checkpoint
        k = self.graph.k
        if k == 0:
            for _ in range(steps):
                fault_site("coloring.step")
                if checkpoint is not None:
                    checkpoint()
            return dict(self.state)
        v_block = integer_block(self._rng, k, steps)
        u_block = uniform_block(self._rng, steps)
        if self.vectorized and steps >= BATCH_MIN_STEPS:
            proposal_idx = np.zeros(steps, dtype=np.intp)
            for v in np.unique(v_block):
                cdf = self._cdfs[v]
                if cdf is not None:
                    sel = v_block == v
                    proposal_idx[sel] = cdf.searchsorted(u_block[sel],
                                                         side="right")
        else:
            proposal_idx = None
        state = self.state
        for s in range(steps):
            fault_site("coloring.step")
            if checkpoint is not None:
                checkpoint()
            v = int(v_block[s])
            colours = self._colors[v]
            if len(colours) == 1:
                continue
            if proposal_idx is None:
                idx = int(choice_from_cdf(self._cdfs[v], u_block[s]))
            else:
                idx = int(proposal_idx[s])
            proposal = colours[idx]
            if proposal == state[v]:
                continue
            for nb in self._neighbors[v]:
                if state[nb] == proposal:
                    break
            else:
                state[v] = proposal
        return dict(self.state)

    def default_steps(self, safety: float = 4.0) -> int:
        """A mixing budget of ``O(k log k)`` steps (Lemma 3)."""
        k = max(1, self.graph.k)
        return max(1, int(math.ceil(safety * k * (1.0 + math.log(k)))))

    def sample(self, steps: Optional[int] = None) -> Coloring:
        """Run (approximately) to stationarity and return a colouring."""
        return self.run(self.default_steps() if steps is None else steps)
