"""The Markov chain ``M`` over valid colourings (paper, Section 3.2).

Each step: pick a node ``v`` uniformly; propose a colour from ``S(v)`` with
probability proportional to ``ℓ_colour``; accept iff the proposal keeps the
colouring valid (otherwise stay).  Lemma 2 shows the unique stationary
distribution is ``P~(c) ∝ Π_v ℓ_{c(v)}`` whenever ``|S(v)| >= d_v + 2`` for
all ``v``; Lemma 3 gives ``O(k log k)`` mixing under the stronger condition
``m > Δ(1 + 2 p_max / p_min)``.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

import numpy as np

from ..exceptions import ColoringError
from ..resilience.faults import fault_site
from ..rng import RngLike, as_generator
from .graph import Coloring, ColoringGraph


class ColoringChain:
    """Runs the single-site chain over valid colourings of ``graph``.

    ``checkpoint`` is an optional cooperative-cancellation hook invoked
    once per transition (see
    :meth:`repro.resilience.budget.BudgetScope.checkpoint`).
    """

    def __init__(self, graph: ColoringGraph, initial: Coloring,
                 rng: RngLike = None,
                 checkpoint: Optional[Callable[[], None]] = None):
        if not graph.is_valid(initial):
            raise ColoringError("initial coloring is not valid")
        self.graph = graph
        self.state: Coloring = dict(initial)
        self._rng = as_generator(rng)
        self._checkpoint = checkpoint
        # Pre-compute per-node colour lists and proposal probabilities.
        self._colors: List[List[int]] = []
        self._probs: List[np.ndarray] = []
        for node in graph.nodes:
            colours = sorted(node.elements)
            weights = np.array(
                [self._finite_weight(graph.weights[c]) for c in colours],
                dtype=float,
            )
            self._colors.append(colours)
            self._probs.append(weights / weights.sum())

    @staticmethod
    def _finite_weight(w: float) -> float:
        # Infinite weights belong to exactly-determined elements, which only
        # occur in singleton predicates where the choice is forced anyway.
        return w if math.isfinite(w) else 1.0

    # ------------------------------------------------------------------

    def step(self) -> bool:
        """One chain transition; returns True when the colour changed."""
        fault_site("coloring.step")
        if self._checkpoint is not None:
            self._checkpoint()
        graph = self.graph
        k = graph.k
        if k == 0:
            return False
        v = int(self._rng.integers(k))
        colours = self._colors[v]
        if len(colours) == 1:
            return False
        proposal = colours[
            int(self._rng.choice(len(colours), p=self._probs[v]))
        ]
        if proposal == self.state[v]:
            return False
        for nb in graph.neighbors(v):
            if self.state[nb] == proposal:
                return False  # invalid: keep the old colour
        self.state[v] = proposal
        return True

    def run(self, steps: int) -> Coloring:
        """Advance ``steps`` transitions and return the current colouring."""
        for _ in range(steps):
            self.step()
        return dict(self.state)

    def default_steps(self, safety: float = 4.0) -> int:
        """A mixing budget of ``O(k log k)`` steps (Lemma 3)."""
        k = max(1, self.graph.k)
        return max(1, int(math.ceil(safety * k * (1.0 + math.log(k)))))

    def sample(self, steps: Optional[int] = None) -> Coloring:
        """Run (approximately) to stationarity and return a colouring."""
        return self.run(self.default_steps() if steps is None else steps)
