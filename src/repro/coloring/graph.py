"""The colouring graph ``G`` derived from a combined synopsis (§3.2).

Nodes are equality predicates; the colours available at a node are the
elements of its query set (each of which could be the predicate's witness);
edges join predicates with intersecting query sets — the no-duplicates
assumption forbids a shared witness.  Because max (resp. min) predicates are
pairwise disjoint within their side, the graph is bipartite between max and
min nodes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Tuple

from ..exceptions import ColoringError
from ..synopsis.combined import CombinedSynopsis

Coloring = Dict[int, int]  # node id -> element (colour)


@dataclass(frozen=True)
class ColoringNode:
    """One node of the colouring graph."""

    node_id: int
    elements: FrozenSet[int]  # the available colours S(v)
    value: float              # the predicate's answer A(v)
    is_max: bool


class ColoringGraph:
    """Graph over equality predicates with weighted colours.

    Parameters
    ----------
    synopsis:
        A propagated :class:`~repro.synopsis.combined.CombinedSynopsis`.
    """

    def __init__(self, synopsis: CombinedSynopsis):
        self.synopsis = synopsis
        self.nodes: List[ColoringNode] = []
        for pred in synopsis.equality_predicates():
            self.nodes.append(ColoringNode(
                node_id=len(self.nodes),
                elements=pred.frozen_elements(),
                value=pred.value,
                is_max=pred.is_max,
            ))
        self._adjacency: List[List[int]] = [[] for _ in self.nodes]
        for u, w in itertools.combinations(self.nodes, 2):
            if u.elements & w.elements:
                self._adjacency[u.node_id].append(w.node_id)
                self._adjacency[w.node_id].append(u.node_id)
        self.weights: Dict[int, float] = {}
        for node in self.nodes:
            for element in node.elements:
                if element not in self.weights:
                    length = synopsis.range_of(element).length
                    # Propagation guarantees multi-element predicates only
                    # contain elements with non-degenerate ranges; singleton
                    # predicates have a single forced colour whose weight
                    # never influences a choice.
                    self.weights[element] = (
                        1.0 / length if length > 0 else float("inf")
                    )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of nodes (equality predicates)."""
        return len(self.nodes)

    def neighbors(self, node_id: int) -> List[int]:
        """Adjacent node ids."""
        return self._adjacency[node_id]

    def degree(self, node_id: int) -> int:
        """Degree of a node."""
        return len(self._adjacency[node_id])

    def max_degree(self) -> int:
        """``Δ``, the maximum degree."""
        return max((self.degree(v.node_id) for v in self.nodes), default=0)

    def min_colors(self) -> int:
        """``m``, the minimum number of colours over all nodes."""
        return min((len(v.elements) for v in self.nodes), default=0)

    def satisfies_lemma2(self) -> bool:
        """Lemma 2 precondition: ``|S(v)| >= d_v + 2`` for every node."""
        return all(
            len(v.elements) >= self.degree(v.node_id) + 2 for v in self.nodes
        )

    def mixing_condition(self) -> Tuple[bool, float, float]:
        """Lemma 3 diagnostic: ``m > Δ(1 + 2 p_max / p_min)``.

        Returns ``(holds, m, threshold)``.  ``p_max``/``p_min`` are bounded
        by the extreme single-colour conditional probabilities derived from
        the weights.
        """
        if not self.nodes:
            return True, 0.0, 0.0
        finite = [w for w in self.weights.values() if math.isfinite(w)]
        if not finite:
            return True, float(self.min_colors()), 0.0
        p_max = max(finite)
        p_min = min(finite)
        m = float(self.min_colors())
        threshold = self.max_degree() * (1.0 + 2.0 * p_max / p_min)
        return m > threshold, m, threshold

    # ------------------------------------------------------------------
    # Colourings
    # ------------------------------------------------------------------

    def is_valid(self, coloring: Coloring) -> bool:
        """Whether ``coloring`` assigns each node an available colour with
        no two adjacent nodes sharing one."""
        if set(coloring) != {v.node_id for v in self.nodes}:
            return False
        for node in self.nodes:
            colour = coloring[node.node_id]
            if colour not in node.elements:
                return False
            for nb in self._adjacency[node.node_id]:
                if nb > node.node_id and coloring[nb] == colour:
                    return False
        return True

    def log_weight(self, coloring: Coloring) -> float:
        """``log P~(c)`` up to the normalising constant."""
        total = 0.0
        for node_id, colour in coloring.items():
            w = self.weights[colour]
            total += math.log(w) if math.isfinite(w) else 0.0
        return total

    def coloring_from_dataset(self, values) -> Coloring:
        """The unique colouring induced by a consistent dataset: each
        predicate's colour is the element achieving its answer."""
        coloring: Coloring = {}
        for node in self.nodes:
            hits = [i for i in node.elements if values[i] == node.value]
            if len(hits) != 1:
                raise ColoringError(
                    f"dataset does not single out a witness for node "
                    f"{node.node_id} (value {node.value}, hits {hits})"
                )
            coloring[node.node_id] = hits[0]
        return coloring

    def find_valid_coloring(self) -> Coloring:
        """A valid colouring via backtracking (most-constrained-first)."""
        order = sorted(self.nodes, key=lambda v: len(v.elements))
        coloring: Coloring = {}

        def backtrack(idx: int) -> bool:
            if idx == len(order):
                return True
            node = order[idx]
            used = {coloring[nb] for nb in self._adjacency[node.node_id]
                    if nb in coloring}
            for colour in sorted(node.elements):
                if colour in used:
                    continue
                coloring[node.node_id] = colour
                if backtrack(idx + 1):
                    return True
                del coloring[node.node_id]
            return False

        if not backtrack(0):
            raise ColoringError("no valid coloring exists")
        return coloring


def enumerate_colorings(graph: ColoringGraph) -> Iterator[Coloring]:
    """Yield every valid colouring (exponential; tests and tiny graphs only)."""
    nodes = graph.nodes

    def recurse(idx: int, partial: Coloring) -> Iterator[Coloring]:
        if idx == len(nodes):
            yield dict(partial)
            return
        node = nodes[idx]
        used = {partial[nb] for nb in graph.neighbors(node.node_id)
                if nb in partial}
        for colour in sorted(node.elements):
            if colour in used:
                continue
            partial[node.node_id] = colour
            yield from recurse(idx + 1, partial)
            del partial[node.node_id]

    yield from recurse(0, {})
