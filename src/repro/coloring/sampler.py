"""Sampling datasets from the posterior ``P(X | B)`` (Lemma 1).

The generative procedure proved correct in Lemma 1:

1. sample a colouring ``c`` from ``P~``;
2. set ``x_{c(v)} = A(v)`` for each equality predicate ``v``;
3. sample every remaining ``x_i`` uniformly from its range ``R_i``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..rng import RngLike, as_generator, scale_uniform, uniform_block
from ..synopsis.combined import CombinedSynopsis
from .chain import ColoringChain
from .graph import Coloring, ColoringGraph


def _containing_bucket(edges: np.ndarray, value: float) -> int:
    """0-based bucket index containing ``value`` (boundary values belong to
    the left bucket, matching the paper's ``ceil`` convention)."""
    idx = int(np.searchsorted(edges, value, side="left")) - 1
    return min(max(idx, 0), len(edges) - 2)


def dataset_from_coloring(graph: ColoringGraph, coloring: Coloring,
                          rng: RngLike = None) -> List[float]:
    """Materialise a dataset from a colouring (steps 2–3 of Lemma 1).

    The uniform fills are drawn as one block over the free elements in
    index order, which is bitwise-identical to the per-element
    ``Generator.uniform`` calls it replaces.
    """
    gen = as_generator(rng)
    synopsis = graph.synopsis
    values: List[Optional[float]] = [None] * synopsis.n
    for node in graph.nodes:
        values[coloring[node.node_id]] = node.value
    free: List[int] = []
    lows: List[float] = []
    highs: List[float] = []
    for i in range(synopsis.n):
        if values[i] is not None:
            continue
        rng_i = synopsis.range_of(i)
        if rng_i.is_point:
            values[i] = rng_i.lo
        else:
            free.append(i)
            lows.append(rng_i.lo)
            highs.append(rng_i.hi)
    if free:
        fills = scale_uniform(uniform_block(gen, len(free)),
                              np.asarray(lows), np.asarray(highs))
        for i, fill in zip(free, fills):
            values[i] = float(fill)
    return [float(v) for v in values]


class PosteriorSampler:
    """Draws datasets consistent with a combined synopsis via the chain.

    Parameters
    ----------
    synopsis:
        The propagated combined synopsis ``B``.
    initial_dataset:
        Optional dataset consistent with ``B`` used to derive the initial
        colouring (the paper initialises from the true database state); when
        omitted a valid colouring is found by backtracking.
    burn_in:
        Chain steps before the first sample; defaults to the Lemma 3 budget.
    thin:
        Chain steps between consecutive samples.
    checkpoint:
        Optional cooperative-cancellation hook, invoked once per chain
        transition (see :class:`repro.resilience.budget.BudgetScope`).
    vectorized:
        Whether the underlying chain resolves proposals in batches; the
        scalar reference path (``False``) is bitwise-identical (see
        :class:`ColoringChain`).
    """

    def __init__(self, synopsis: CombinedSynopsis,
                 initial_dataset: Optional[List[float]] = None,
                 rng: RngLike = None,
                 burn_in: Optional[int] = None,
                 thin: Optional[int] = None,
                 checkpoint: Optional[Callable[[], None]] = None,
                 vectorized: bool = True):
        self._rng = as_generator(rng)
        self.graph = ColoringGraph(synopsis)
        if initial_dataset is not None:
            initial = self.graph.coloring_from_dataset(initial_dataset)
        elif self.graph.k:
            initial = self.graph.find_valid_coloring()
        else:
            initial = {}
        self.chain = ColoringChain(self.graph, initial, rng=self._rng,
                                   checkpoint=checkpoint,
                                   vectorized=vectorized)
        default = self.chain.default_steps()
        self.burn_in = default if burn_in is None else burn_in
        self.thin = max(1, default // 4) if thin is None else thin
        self._warmed = False

    def sample_coloring(self) -> Coloring:
        """One colouring drawn (approximately) from ``P~``."""
        if not self._warmed:
            self.chain.run(self.burn_in)
            self._warmed = True
        else:
            self.chain.run(self.thin)
        return dict(self.chain.state)

    def sample_dataset(self) -> List[float]:
        """One dataset drawn (approximately) from ``P(X | B)``."""
        return dataset_from_coloring(self.graph, self.sample_coloring(),
                                     rng=self._rng)

    def sample_datasets(self, count: int) -> List[List[float]]:
        """``count`` (thinned) posterior datasets."""
        return [self.sample_dataset() for _ in range(count)]

    def estimate_witness_probabilities(self, count: int) -> Dict[int, Dict[int, float]]:
        """Monte Carlo estimate of ``Pr{c(v) = i | B}`` per node.

        Returns ``{node_id: {element: probability}}`` from ``count`` thinned
        colouring samples (no dataset materialisation needed).
        """
        counts: Dict[int, Dict[int, float]] = {
            node.node_id: {} for node in self.graph.nodes
        }
        for _ in range(count):
            coloring = self.sample_coloring()
            for node_id, element in coloring.items():
                bucket = counts[node_id]
                bucket[element] = bucket.get(element, 0.0) + 1.0
        for node_id, bucket in sorted(counts.items()):
            for element in sorted(bucket):
                bucket[element] /= count
        return counts

    def estimate_interval_probabilities(
        self, count: int, edges: np.ndarray
    ) -> np.ndarray:
        """Rao-Blackwellised estimate of ``Pr{x_i in I_j | B}``.

        Only the *witness probabilities* are Monte Carlo quantities;
        conditioned on the colouring, every non-witness element is exactly
        uniform over its range ``R_i`` (Lemma 1 step 3), so the bucket mass
        is assembled analytically:

        ``P(x_i in I_j) = sum_v pi_i(v) [A(v) in I_j]
                          + (1 - sum_v pi_i(v)) |R_i ∩ I_j| / |R_i|``

        Returns an ``(n, gamma)`` matrix; ``edges`` has ``gamma + 1``
        increasing bucket boundaries.
        """
        synopsis = self.graph.synopsis
        n = synopsis.n
        gamma = len(edges) - 1
        witness = self.estimate_witness_probabilities(count) if count else {}
        probs = np.zeros((n, gamma), dtype=float)
        # Point-mass contributions from witness roles.
        point_mass = np.zeros(n)
        for node in self.graph.nodes:
            bucket_idx = _containing_bucket(edges, node.value)
            for element, pi in witness.get(node.node_id, {}).items():
                probs[element, bucket_idx] += pi
                point_mass[element] += pi
        # Exact uniform mass over each element's range for the rest.
        for i in range(n):
            rng_i = synopsis.range_of(i)
            remaining = 1.0 - point_mass[i]
            if remaining <= 0.0:
                continue
            if rng_i.length <= 0.0:
                probs[i, _containing_bucket(edges, rng_i.lo)] += remaining
                continue
            for j in range(gamma):
                overlap = (min(rng_i.hi, float(edges[j + 1]))
                           - max(rng_i.lo, float(edges[j])))
                if overlap > 0:
                    probs[i, j] += remaining * overlap / rng_i.length
        return probs
