"""Graph-colouring machinery for the probabilistic max-and-min auditor.

Section 3.2 of the paper reduces sampling datasets from the posterior
``P(X | B)`` to sampling valid colourings of a graph built from the equality
predicates of the combined synopsis:

* one node per equality predicate ``v``, colours = its query set ``S(v)``;
* an edge whenever two predicates' query sets intersect (two predicates can
  never share their witness, because their values differ);
* target distribution ``P~(c) ∝ Π_v ℓ_{c(v)}`` with ``ℓ_i = 1/|R_i|``
  (Lemma 1), sampled by a single-site Metropolis-style chain (Lemma 2
  stationarity, Lemma 3 mixing in ``O(k log k)``).
"""

from .chain import ColoringChain
from .graph import ColoringGraph, enumerate_colorings
from .sampler import PosteriorSampler, dataset_from_coloring

__all__ = [
    "ColoringChain",
    "ColoringGraph",
    "PosteriorSampler",
    "dataset_from_coloring",
    "enumerate_colorings",
]
