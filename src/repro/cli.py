"""Command-line interface: run the paper's experiments from a shell.

``python -m repro <command>`` (or the ``repro-audit`` console script):

* ``fig1``   — time to first denial vs database size (Figure 1);
* ``fig2``   — denial-probability curves for the three sum workloads
  (Figure 2);
* ``fig3``   — denial probability for max queries (Figure 3);
* ``attack`` — the denial-decoding attack vs naive and simulatable auditors;
* ``game``   — empirical ``(lambda, delta, gamma, T)``-privacy of the
  Section 3.1 auditor;
* ``empirical`` — the full grey-box audit matrix with Clopper-Pearson
  bounds and adversarial workload search (also ``repro-audit-empirical``);
* ``price``  — the §7 price of simulatability for max auditing;
* ``serve``  — an audited SQL statistics endpoint over a CSV file;
* ``lint``   — the static analysis gate: eight rule families (SIM, DET,
  WAL, BUD, CONC, FORK, ATOM, LEAK) over the package's serving paths;
  see ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    return args.handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description="Query-auditing experiments from "
                    "'Towards Robustness in Query Auditing' (VLDB 2006)",
    )
    sub = parser.add_subparsers(dest="command")
    parser.set_defaults(command=None)

    p = sub.add_parser("fig1", help="time to first denial vs database size")
    p.add_argument("--sizes", type=int, nargs="+",
                   default=[50, 100, 200, 400])
    p.add_argument("--trials", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out-csv", default=None,
                   help="also write the table to this CSV file")
    p.set_defaults(handler=_cmd_fig1)

    p = sub.add_parser("fig2", help="denial curves for three sum workloads")
    p.add_argument("--n", type=int, default=200)
    p.add_argument("--horizon", type=int, default=None)
    p.add_argument("--trials", type=int, default=4)
    p.add_argument("--update-every", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out-csv", default=None,
                   help="also write the three curves to this CSV file")
    p.set_defaults(handler=_cmd_fig2)

    p = sub.add_parser("fig3", help="denial probability for max queries")
    p.add_argument("--n", type=int, default=250)
    p.add_argument("--horizon", type=int, default=None)
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out-csv", default=None,
                   help="also write the curve to this CSV file")
    p.set_defaults(handler=_cmd_fig3)

    p = sub.add_parser("attack", help="denial-decoding attack comparison")
    p.add_argument("--n", type=int, default=90)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_cmd_attack)

    p = sub.add_parser("game",
                       help="empirical privacy of the probabilistic auditors")
    p.add_argument("--auditor", choices=["max", "maxmin"], default="max")
    p.add_argument("--n", type=int, default=40)
    p.add_argument("--rounds", type=int, default=6)
    p.add_argument("--lam", type=float, default=0.2)
    p.add_argument("--gamma", type=int, default=5)
    p.add_argument("--delta", type=float, default=0.2)
    p.add_argument("--trials", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_cmd_game)

    p = sub.add_parser(
        "empirical",
        help="grey-box empirical privacy audit: Monte-Carlo compromise "
             "rates with Clopper-Pearson bounds vs the claimed delta",
    )
    from .audit_empirical.cli import add_arguments as _empirical_arguments

    _empirical_arguments(p)
    p.set_defaults(handler=_cmd_empirical)

    p = sub.add_parser("price", help="price of simulatability (max queries)")
    p.add_argument("--n", type=int, default=100)
    p.add_argument("--horizon", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_cmd_price)

    p = sub.add_parser(
        "serve",
        help="audited SQL statistics endpoint over a CSV file (reads one "
             "SQL query per stdin line)",
    )
    p.add_argument("--csv", required=True, help="CSV file with a header row")
    p.add_argument("--sensitive", required=True,
                   help="name of the sensitive column")
    p.add_argument("--auditor",
                   choices=["sum", "max", "maxmin",
                            "sum-prob", "max-prob", "maxmin-prob"],
                   default="sum")
    p.add_argument("--journal", default=None,
                   help="write the audit journal to this JSON file on exit")
    p.add_argument("--wal", default=None,
                   help="crash-safe write-ahead audit log file; every "
                        "decision is fsynced before its answer is printed, "
                        "and an existing log is recovered and replayed")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="N",
                   help="with --wal (then a directory): snapshot auditor "
                        "state every N journal records, so recovery "
                        "replays only the post-checkpoint suffix and old "
                        "segments are compacted away")
    p.add_argument("--checkpoint-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="with --wal: also checkpoint once the active log "
                        "segment exceeds BYTES")
    p.add_argument("--replicate-to", action="append", default=None,
                   metavar="DIR",
                   help="with --wal: ship every decision to a follower "
                        "replica process keeping a bitwise copy of the "
                        "audit log under DIR; answers are released only "
                        "after every follower acknowledges (repeatable)")
    p.add_argument("--follow", default=None, metavar="DIR",
                   help="serve as a read-only follower replica over the "
                        "replicated audit log in DIR: replicated "
                        "decisions are re-released, everything else is "
                        "denied (incompatible with --wal/--replicate-to)")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-query wall-clock budget in seconds "
                        "(probabilistic auditors only); exhaustion yields "
                        "a fail-closed resource-exhausted denial")
    p.add_argument("--seed", type=int, default=0,
                   help="rng seed for the probabilistic auditors")
    p.add_argument("--listen", default=None, metavar="HOST:PORT",
                   help="serve the audit HTTP API instead of the stdin "
                        "SQL loop: the frontend is sharded by user id "
                        "across worker processes, each with its own "
                        "checkpointed WAL under --wal (see docs/API.md)")
    p.add_argument("--shards", type=int, default=2, metavar="N",
                   help="with --listen: number of shard workers")
    p.add_argument("--shard-mode", choices=["spawn", "inline"],
                   default="spawn",
                   help="with --listen: worker isolation (spawn = one "
                        "process per shard; inline = in-process, for "
                        "drills and tests)")
    p.add_argument("--user-rate", type=float, default=None,
                   help="with --listen: per-user sustained queries/second "
                        "admission limit; sheds surface as HTTP 429 and "
                        "are journalled resource-exhausted denials")
    p.add_argument("--max-in-flight", type=int, default=None,
                   help="with --listen: per-shard bound on concurrently "
                        "executing audits (beyond it, shed — not queued)")
    p.add_argument("--max-deadline", type=float, default=30.0,
                   help="with --listen: server-side cap in seconds on "
                        "propagated client deadlines (clamps skewed "
                        "absolute X-Deadline headers)")
    p.set_defaults(handler=_cmd_serve, parser=p)

    p = sub.add_parser(
        "lint",
        help="statically verify the serving invariants: simulatability "
             "(SIM), determinism (DET), fail-closed ordering (WAL), "
             "budget checkpointing (BUD), lock discipline (CONC), "
             "fork/spawn safety (FORK), durable renames (ATOM) and "
             "taint-flow leak freedom (LEAK)",
    )
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text",
                   help="output format (default: text)")
    p.add_argument("--package-dir", default=None,
                   help="analyse this package directory instead of the "
                        "installed repro package")
    p.add_argument("--select", default=None, metavar="RULES",
                   help="comma-separated rule IDs or families to run "
                        "(e.g. 'DET,WAL001'); default: all rules")
    p.add_argument("--ignore", default=None, metavar="RULES",
                   help="comma-separated rule IDs or families to skip")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="suppress findings recorded in this baseline file")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite --baseline from the current run's "
                        "undocumented findings and exit 0")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="shard the rule families over N worker processes "
                        "(findings are identical to a serial run)")
    p.add_argument("--quiet", action="store_true",
                   help="print nothing when the tree is clean")
    p.set_defaults(handler=_cmd_lint)

    return parser


# ----------------------------------------------------------------------
# Command handlers
# ----------------------------------------------------------------------

def _cmd_fig1(args) -> int:
    from .reporting.tables import format_table
    from .utility.experiments import time_to_first_denial_vs_size
    from .utility.theory import theorem6_lower_bound, theorem7_upper_bound

    means = time_to_first_denial_vs_size(args.sizes, args.trials,
                                         rng=args.seed)
    rows = [(n, f"{means[n]:.1f}", f"{means[n] / n:.2f}",
             f"{theorem6_lower_bound(n):.1f}",
             f"{theorem7_upper_bound(n):.1f}") for n in args.sizes]
    print(format_table(
        ["n", "mean first denial", "T/n", "Thm6 lower", "Thm7 upper"],
        rows, title="Figure 1: time to first denial (sum queries)",
    ))
    if args.out_csv:
        from .reporting.export import write_table_csv

        write_table_csv(args.out_csv,
                        ["n", "mean_first_denial", "ratio",
                         "thm6_lower", "thm7_upper"], rows)
        print(f"wrote {args.out_csv}")
    return 0


def _cmd_fig2(args) -> int:
    from .reporting.ascii_plots import ascii_plot
    from .utility.experiments import (
        estimate_denial_curve,
        run_range_trial,
        run_sum_denial_trial,
        run_update_trial,
    )
    from .utility.metrics import moving_average

    n = args.n
    horizon = args.horizon or 3 * n
    plots = [
        ("Plot 1: uniform random sum queries",
         lambda child: run_sum_denial_trial(n, horizon, rng=child)),
        (f"Plot 2: modification every {args.update_every} queries",
         lambda child: run_update_trial(n, horizon,
                                        update_every=args.update_every,
                                        rng=child)),
        ("Plot 3: 1-d range queries (width 50-100)",
         lambda child: run_range_trial(n, horizon, rng=child)),
    ]
    curves = {}
    for title, trial in plots:
        curve = estimate_denial_curve(trial, args.trials, rng=args.seed)
        curves[title.split(":")[0]] = curve
        print(ascii_plot(moving_average(curve, max(5, n // 8)),
                         title=f"{title} (n={n})", y_label="query index"))
        tail = curve[min(2 * n, len(curve) // 2):]
        print(f"  long-run denial probability: "
              f"{float(np.mean(tail)):.2f}\n")
    if args.out_csv:
        from .reporting.export import write_series_csv

        write_series_csv(args.out_csv,
                         {name: list(curve)
                          for name, curve in curves.items()},
                         index_name="query")
        print(f"wrote {args.out_csv}")
    return 0


def _cmd_fig3(args) -> int:
    from .reporting.ascii_plots import ascii_plot
    from .utility.experiments import estimate_denial_curve, run_max_denial_trial
    from .utility.metrics import moving_average

    n = args.n
    horizon = args.horizon or 3 * n
    curve = estimate_denial_curve(
        lambda child: run_max_denial_trial(n, horizon, rng=child),
        args.trials, rng=args.seed,
    )
    print(ascii_plot(moving_average(curve, max(5, n // 8)),
                     title=f"Figure 3: max-query denial probability (n={n})",
                     y_label="query index"))
    print(f"  plateau (queries {n}..{horizon}): "
          f"{float(np.mean(curve[n:])):.2f}")
    if args.out_csv:
        from .reporting.export import write_series_csv

        write_series_csv(args.out_csv, {"denial_probability": list(curve)},
                         index_name="query")
        print(f"wrote {args.out_csv}")
    return 0


def _cmd_attack(args) -> int:
    from .attack.naive_max_attack import run_denial_decoding_attack
    from .auditors.max_classic import MaxClassicAuditor
    from .auditors.naive import NaiveMaxAuditor, OracleMaxAuditor
    from .reporting.tables import format_table
    from .sdb.dataset import Dataset

    data = Dataset.uniform(args.n, rng=args.seed)
    rows = []
    for name, cls in (("oracle", OracleMaxAuditor),
                      ("naive", NaiveMaxAuditor),
                      ("simulatable", MaxClassicAuditor)):
        auditor = cls(Dataset(list(data.values), low=data.low,
                              high=data.high))
        result = run_denial_decoding_attack(auditor, args.n,
                                            rng=args.seed + 1)
        correct = sum(1 for i, v in result.learned.items() if data[i] == v)
        rows.append((name, result.queries_posed, result.denials, correct,
                     f"{correct / args.n:.0%}"))
    print(format_table(
        ["auditor", "queries", "denials", "values leaked", "fraction"],
        rows, title=f"Denial-decoding attack over {args.n} records",
    ))
    return 0


def _cmd_game(args) -> int:
    from .attack.interval_attack import IntervalAttacker
    from .auditors.max_prob import MaxProbabilisticAuditor
    from .auditors.maxmin_prob import MaxMinProbabilisticAuditor
    from .privacy.game import (
        PrivacyGame,
        estimate_privacy,
        make_max_posterior_oracle,
        make_maxmin_posterior_oracle,
    )
    from .privacy.intervals import IntervalGrid
    from .sdb.dataset import Dataset

    grid = IntervalGrid(args.gamma)
    if args.auditor == "max":
        oracle = make_max_posterior_oracle(grid, args.n)

        def make_auditor(ds):
            return MaxProbabilisticAuditor(
                ds, lam=args.lam, gamma=args.gamma, delta=args.delta,
                rounds=args.rounds, num_samples=40, rng=args.seed,
            )
    else:
        oracle = make_maxmin_posterior_oracle(grid, args.n,
                                              num_samples=150, rng=args.seed)

        def make_auditor(ds):
            return MaxMinProbabilisticAuditor(
                ds, lam=args.lam, gamma=args.gamma, delta=args.delta,
                rounds=args.rounds, num_outer=3, num_inner=30, rng=args.seed,
            )
    game = PrivacyGame(grid, args.lam, args.rounds, oracle)
    win_rate = estimate_privacy(
        game,
        make_auditor=make_auditor,
        make_attacker=lambda rng: IntervalAttacker(args.n, rng=rng),
        make_dataset=lambda rng: Dataset.uniform(args.n, rng=rng),
        trials=args.trials,
        rng=args.seed,
    )
    verdict = "PRIVATE" if win_rate <= args.delta else "BREACHED"
    print(f"attacker win rate: {win_rate:.3f} over {args.trials} games "
          f"(delta = {args.delta}) -> {verdict}")
    return 0 if win_rate <= args.delta else 1


def _cmd_empirical(args) -> int:
    from .audit_empirical.cli import run

    return run(args)


def _cmd_price(args) -> int:
    from .auditors.max_classic import MaxClassicAuditor
    from .sdb.dataset import Dataset
    from .types import max_query
    from .utility.price_of_simulatability import (
        measure_price_of_simulatability,
    )

    rng = np.random.default_rng(args.seed)
    data = Dataset.uniform(args.n, rng=rng)
    auditor = MaxClassicAuditor(data)
    stream = []
    for _ in range(args.horizon):
        size = int(rng.integers(1, args.n + 1))
        members = [int(i) for i in rng.choice(args.n, size=size,
                                              replace=False)]
        stream.append(max_query(members))
    tally = measure_price_of_simulatability(auditor, stream)
    print(f"answered {tally.answered}, necessary denials "
          f"{tally.necessary_denials}, conservative denials "
          f"{tally.conservative_denials}")
    print(f"price of simulatability: {tally.price:.2f}")
    return 0


def _cmd_lint(args) -> int:
    import os
    import traceback

    from .analysis import analyze_package, report_to_sarif_json, \
        write_baseline

    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline",
              file=sys.stderr)
        return 2
    baseline = args.baseline
    if baseline is not None and not os.path.exists(baseline):
        if not args.update_baseline:
            print(f"error: baseline file not found: {baseline}",
                  file=sys.stderr)
            return 2
        baseline = None
    try:
        report = analyze_package(
            package_dir=args.package_dir,
            select=args.select.split(",") if args.select else None,
            ignore=args.ignore.split(",") if args.ignore else None,
            baseline=None if args.update_baseline else baseline,
            processes=args.jobs,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception:  # internal analyzer bug: fail loudly, not as findings
        print("error: internal analyzer error", file=sys.stderr)
        traceback.print_exc(file=sys.stderr)
        return 2
    if args.update_baseline:
        recorded = write_baseline(args.baseline, report)
        print(f"lint: recorded {recorded} finding(s) in {args.baseline}")
        return 0
    if args.format == "json":
        print(report.to_json())
    elif args.format == "sarif":
        print(report_to_sarif_json(report))
    elif not (args.quiet and report.ok):
        print(report.format_text())
    if not report.ok:
        print(f"lint: {len(report.violations)} undocumented "
              f"violation(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args, stdin=None) -> int:
    from .auditors.max_classic import MaxClassicAuditor
    from .auditors.max_prob import MaxProbabilisticAuditor
    from .auditors.maxmin_classic import MaxMinClassicAuditor
    from .auditors.maxmin_prob import MaxMinProbabilisticAuditor
    from .auditors.sum_classic import SumClassicAuditor
    from .auditors.sum_prob import SumProbabilisticAuditor
    from .exceptions import ReproError
    from .io import load_csv_database
    from .persistence import JournaledAuditor
    from .resilience import Budget
    from .sdb.sql import execute_sql

    classic = {
        "sum": SumClassicAuditor,
        "max": MaxClassicAuditor,
        "maxmin": MaxMinClassicAuditor,
    }
    probabilistic = {
        "sum-prob": SumProbabilisticAuditor,
        "max-prob": MaxProbabilisticAuditor,
        "maxmin-prob": MaxMinProbabilisticAuditor,
    }
    # Argument conflicts fail through argparse when the args came from
    # the real parser (usage + message on stderr, exit code 2); hand-built
    # Namespaces (tests, embedding) keep the print-and-return contract.
    parser = getattr(args, "parser", None)

    def conflict(message: str) -> int:
        if parser is not None:
            parser.error(message)  # raises SystemExit(2)
        print(f"error: {message}")
        return 2

    if args.auditor in classic:
        if args.deadline is not None:
            return conflict(
                "--deadline applies to the probabilistic auditors; "
                "the classic decision procedures are closed-form")

        def base_factory(dataset):
            return classic[args.auditor](dataset)
    else:
        budget = (Budget(wall_time=args.deadline)
                  if args.deadline is not None else None)

        def base_factory(dataset):
            return probabilistic[args.auditor](dataset, rng=args.seed,
                                               budget=budget)

    if args.wal:
        # open_wal_auditor wraps the raw auditor itself; replay-verify only
        # the deterministic classics (probabilistic replays restore state
        # without re-deciding).
        factory = base_factory
    else:
        def factory(dataset):
            return JournaledAuditor(base_factory(dataset))

    checkpoint = None
    checkpoint_every = getattr(args, "checkpoint_every", None)
    checkpoint_bytes = getattr(args, "checkpoint_bytes", None)
    if checkpoint_every is not None or checkpoint_bytes is not None:
        if not args.wal:
            return conflict(
                "--checkpoint-every/--checkpoint-bytes require --wal "
                "(a WAL directory)")
        from .resilience.checkpoint import CheckpointPolicy

        checkpoint = CheckpointPolicy(every_records=checkpoint_every,
                                      every_bytes=checkpoint_bytes)

    replicate_to = getattr(args, "replicate_to", None)
    follow = getattr(args, "follow", None)
    listen = getattr(args, "listen", None)
    if follow and args.wal:
        return conflict(
            "--follow serves an existing replica read-only and is "
            "incompatible with --wal (a follower never appends to the "
            "audit log)")
    if follow and replicate_to:
        return conflict(
            "--follow serves an existing replica read-only and is "
            "incompatible with --replicate-to (a follower never ships "
            "records onward)")
    if follow and listen:
        return conflict(
            "--follow is incompatible with --listen: the networked "
            "serving tier shards writable per-shard WALs, while a "
            "follower is a read-only replica")
    if follow and args.journal:
        return conflict(
            "--journal requires a journalling auditor; a read-only "
            "follower only re-releases replicated decisions")
    if replicate_to and not args.wal:
        return conflict(
            "--replicate-to requires --wal (the primary's checkpointed "
            "WAL directory)")
    if listen and args.journal:
        return conflict(
            "--journal belongs to the stdin SQL loop; with --listen "
            "every shard already persists its own WAL (use --wal)")

    if listen:
        return _serve_http(args)

    follower = None
    links = []
    try:
        if follow:
            from .resilience.replication import (
                Follower,
                FollowerReadOnlyAuditor,
            )

            follower = Follower.open(follow, auditor_factory=base_factory)

            def factory(dataset):  # noqa: F811 - follower overrides WAL
                return FollowerReadOnlyAuditor(follower, dataset)
        elif replicate_to:
            from .resilience.replication import ProcessLink

            # One spawned follower process per target directory; each
            # keeps a bitwise replica and must acknowledge every record
            # before the answer is printed.
            links = [ProcessLink(target, policy=checkpoint)
                     for target in replicate_to]
        db = load_csv_database(args.csv, args.sensitive, factory,
                               wal_path=args.wal,
                               verify_wal=args.auditor in classic,
                               checkpoint=checkpoint,
                               replicate_to=links or None)
    except (OSError, ReproError) as exc:
        for link in links:
            link.close()
        if follower is not None:
            follower.close()
        print(f"error: {exc}")
        return 2

    print(f"serving {db.dataset.n} records from {args.csv}; sensitive "
          f"column {args.sensitive!r}; auditor {args.auditor!r}")
    if follow:
        print(f"read-only follower over {follow}: "
              f"{follower.total_events} replicated events at epoch "
              f"{follower.epoch}")
    elif links:
        print(f"replicating to {len(links)} follower(s): "
              + ", ".join(replicate_to))
    print("enter SQL statistical queries, one per line "
          "(e.g. SELECT sum(x) WHERE a = 1); EOF or 'quit' ends")

    stream = stdin if stdin is not None else sys.stdin
    for line in stream:
        text = line.strip()
        if not text:
            continue
        if text.lower() in ("quit", "exit"):
            break
        try:
            decision = execute_sql(db, text, args.sensitive)
        except ReproError as exc:
            print(f"error: {exc}")
            continue
        if decision.answered:
            print(f"answer: {decision.value}")
        else:
            print(f"DENIED ({decision.reason.value}): {decision.detail}")

    if args.journal:
        with open(args.journal, "w") as handle:
            handle.write(db.auditor.journal.to_json())
        print(f"journal written to {args.journal}")
    if args.wal:
        db.auditor.close()
        if links:
            print(f"write-ahead log synced to {args.wal} and "
                  f"{len(links)} follower replica(s)")
        else:
            print(f"write-ahead log synced to {args.wal}")
    elif follower is not None:
        follower.close()
    trail = db.auditor.trail
    print(f"session: {len(trail)} queries, {trail.denial_count()} denied")
    return 0


def _serve_http(args) -> int:
    """The ``serve --listen`` path: shard the frontend and serve HTTP."""
    import asyncio
    import os

    from .exceptions import ReproError
    from .io import read_records
    from .serving import AuditServer, DeadlinePolicy, ServerConfig
    from .serving.shards import ShardSpec, ShardSupervisor

    host, _, port_text = args.listen.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print("error: --listen expects HOST:PORT")
        return 2
    host = host or "127.0.0.1"

    try:
        with open(args.csv, newline="") as handle:
            records = read_records(handle)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}")
        return 2
    if args.sensitive not in records[0]:
        print(f"error: sensitive column {args.sensitive!r} not found; "
              f"columns are {sorted(records[0])}")
        return 2
    values = tuple(float(rec[args.sensitive]) for rec in records)
    low, high = min(values), max(values)
    if low >= high:
        low, high = low - 1.0, high + 1.0

    num_shards = max(1, getattr(args, "shards", 2) or 1)

    def shard_dir(root, index):
        return os.path.join(root, f"shard-{index:02d}")

    specs = []
    for index in range(num_shards):
        specs.append(ShardSpec(
            index=index, values=values, low=low, high=high,
            auditor=args.auditor, seed=args.seed,
            wal_dir=shard_dir(args.wal, index) if args.wal else None,
            checkpoint_every=getattr(args, "checkpoint_every", None),
            checkpoint_bytes=getattr(args, "checkpoint_bytes", None),
            replicate_to=tuple(
                shard_dir(root, index)
                for root in (getattr(args, "replicate_to", None) or ())),
            user_rate=getattr(args, "user_rate", None),
            max_in_flight=getattr(args, "max_in_flight", None),
        ))
    try:
        supervisor = ShardSupervisor(
            specs, mode=getattr(args, "shard_mode", "spawn"))
    except (OSError, ReproError) as exc:
        print(f"error: {exc}")
        return 2

    config = ServerConfig(host=host, port=port, deadline=DeadlinePolicy(
        default_wall_time=args.deadline,
        max_wall_time=getattr(args, "max_deadline", 30.0) or 30.0,
    ))

    async def _run() -> None:
        server = AuditServer(supervisor, config)
        await server.start()
        print(f"audit API listening on http://{host}:{server.port} "
              f"({num_shards} shard(s), "
              f"{getattr(args, 'shard_mode', 'spawn')} mode); "
              f"POST /query, GET /healthz, /stats, /events")
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        supervisor.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
