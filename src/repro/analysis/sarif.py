"""SARIF 2.1.0 emitter for ``repro-audit lint --format sarif``.

Emits one run with the full rule catalogue as ``tool.driver.rules`` and one
result per finding.  Call chains become ``codeFlows`` so GitHub code
scanning renders the entry-point-to-sink path inline on PRs; the
line-insensitive finding fingerprint is exported as a partial fingerprint
so alerts track across unrelated edits.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .findings import ALL_RULES, RULE_SUMMARIES, Finding, Report

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {"violation": "error", "documented": "note", "baselined": "note"}


def _rules_metadata() -> List[Dict[str, Any]]:
    return [
        {
            "id": rule,
            "shortDescription": {"text": RULE_SUMMARIES[rule]},
            "help": {"text": "See docs/STATIC_ANALYSIS.md for the rule "
                             "catalogue and pragma syntax."},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in ALL_RULES
    ]


def _location(file: str, line: int, col: int) -> Dict[str, Any]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": file.replace("\\", "/")},
            "region": {"startLine": max(1, line),
                       "startColumn": max(1, col + 1)},
        }
    }


def _result(finding: Finding) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "error"),
        "message": {"text": f"{finding.message} [sink: {finding.sink}]"},
        "locations": [_location(finding.file, finding.line, finding.col)],
        "partialFingerprints": {"reproAudit/v1": finding.fingerprint},
    }
    if finding.severity != "violation":
        result["suppressions"] = [{
            "kind": "inSource" if finding.documented else "external",
            "justification": finding.pragma_reason or "baselined",
        }]
    if finding.chain:
        result["codeFlows"] = [{
            "threadFlows": [{
                "locations": [
                    {
                        "location": {
                            **_location(frame.file, frame.line, 0),
                            "message": {"text": frame.function},
                        }
                    }
                    for frame in finding.chain
                ]
            }]
        }]
    return result


def report_to_sarif(report: Report) -> Dict[str, Any]:
    """The SARIF 2.1.0 payload for one analysis run (as a dict)."""
    ordered = sorted(report.findings,
                     key=lambda f: (f.file, f.line, f.col, f.rule))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-audit",
                    "rules": _rules_metadata(),
                }
            },
            "results": [_result(finding) for finding in ordered],
            "columnKind": "utf16CodeUnits",
        }],
    }


def report_to_sarif_json(report: Report, indent: int = 2) -> str:
    return json.dumps(report_to_sarif(report), indent=indent,
                      sort_keys=False)
