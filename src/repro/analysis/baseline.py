"""Baseline files: record known findings so new rules can land strict.

A baseline is a JSON file of finding fingerprints (see
:attr:`~repro.analysis.findings.Finding.fingerprint` — deliberately
line-insensitive so unrelated edits don't invalidate it).  ``repro-audit
lint --baseline <file>`` suppresses exactly the recorded findings — each
fingerprint suppresses as many occurrences as were recorded, so *new*
instances of a baselined pattern still fail.  ``--update-baseline``
rewrites the file from the current run.

The shipped tree's baseline is intentionally empty: every real finding was
either fixed or documented with a pragma.  The file exists so the strict
gate has somewhere to grow from if a future rule lands with debt.
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Union

from .findings import Finding, Report

BASELINE_VERSION = 1


def load_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """``fingerprint -> allowed occurrence count`` from a baseline file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version: {payload.get('version')!r}")
    counts: Dict[str, int] = {}
    for entry in payload.get("findings", []):
        counts[entry["fingerprint"]] = counts.get(
            entry["fingerprint"], 0) + int(entry.get("count", 1) or 1)
    return counts


def write_baseline(path: Union[str, Path], report: Report) -> int:
    """Record the report's undocumented violations; returns how many."""
    counts = Counter(f.fingerprint for f in report.violations)
    by_fingerprint = {}
    for finding in report.violations:
        by_fingerprint.setdefault(finding.fingerprint, finding)
    entries = [
        {
            "fingerprint": fingerprint,
            "count": counts[fingerprint],
            "rule": by_fingerprint[fingerprint].rule,
            "file": by_fingerprint[fingerprint].file,
            "sink": by_fingerprint[fingerprint].sink,
        }
        for fingerprint in sorted(counts)
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return sum(counts.values())


def apply_baseline(report: Report, baseline: Dict[str, int]) -> Report:
    """Mark up to ``count`` occurrences of each fingerprint as baselined.

    Occurrences are consumed in (file, line, col) order so suppression is
    deterministic; findings already documented by a pragma don't consume
    baseline slots.
    """
    budget = dict(baseline)
    rewritten: List[Finding] = []
    ordered = sorted(report.findings,
                     key=lambda f: (f.file, f.line, f.col, f.rule))
    for finding in ordered:
        if (not finding.documented
                and budget.get(finding.fingerprint, 0) > 0):
            budget[finding.fingerprint] -= 1
            finding = dataclasses.replace(finding, baselined=True)
        rewritten.append(finding)
    report.findings = rewritten
    return report
