"""Full-analysis orchestration: all eight rule families in one pass.

Builds the package index, the call-graph resolver, and the effect-summary
engine exactly once, runs every selected rule family over them, and merges
the findings into one :class:`~repro.analysis.findings.Report`.  This is
what ``repro-audit lint`` runs; :func:`repro.analysis.check_package`
remains the SIM-only library entry point.

With ``processes > 1`` the rule families are sharded across worker
processes via :func:`repro.utility.parallel.run_sweep` (spawn-safe, per
the FORK rules): each worker runs :func:`analyze_package` for one family
group against the same tree, and the parent merges the shard reports with
a sorted, deterministic finding order.  The baseline is applied once,
after the merge, so parallel and serial runs suppress identically.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, Union

from .atomics import DEFAULT_ATOMICITY_CONFIG, AtomicityConfig, \
    check_atomics
from .baseline import apply_baseline, load_baseline
from .callgraph import Resolver
from .concurrency import DEFAULT_CONCURRENCY_CONFIG, ConcurrencyConfig, \
    check_concurrency
from .determinism import DEFAULT_DET_CONFIG, DeterminismConfig, \
    check_determinism
from .escape import DEFAULT_ESCAPE_CONFIG, EscapeConfig, EscapeEngine
from .findings import ALL_RULES, Finding, Report, expand_rule_selection
from .forksafety import DEFAULT_FORKSAFETY_CONFIG, ForkSafetyConfig, \
    check_forksafety
from .leaks import DEFAULT_LEAK_CONFIG, LeakConfig, check_leaks
from .modindex import build_index
from .ordering import DEFAULT_ORDERING_CONFIG, OrderingConfig, \
    check_ordering
from .purity import EffectEngine
from .simulatability import (
    DEFAULT_CONFIG,
    AnalysisConfig,
    _Walker,
    default_package_dir,
    find_auditor_classes,
)
from .taintflow import DEFAULT_TAINT_CONFIG, TaintConfig, TaintEngine

#: family groups that share an engine build; one worker each when parallel
_SHARD_GROUPS: Tuple[Tuple[str, ...], ...] = (
    ("SIM",),
    ("DET", "WAL", "BUD"),
    ("CONC", "FORK", "ATOM"),
    ("LEAK",),
)


def active_rules(select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None) -> Set[str]:
    """The rule set a ``--select``/``--ignore`` pair leaves enabled."""
    selected = expand_rule_selection(list(select) if select else None)
    ignored = expand_rule_selection(list(ignore) if ignore else None)
    rules = set(ALL_RULES) if selected is None else selected
    if ignored:
        rules -= ignored
    return rules


def analyze_package(package_dir: Union[str, Path, None] = None,
                    config: Optional[AnalysisConfig] = None,
                    det_config: Optional[DeterminismConfig] = None,
                    ordering_config: Optional[OrderingConfig] = None,
                    escape_config: Optional[EscapeConfig] = None,
                    conc_config: Optional[ConcurrencyConfig] = None,
                    fork_config: Optional[ForkSafetyConfig] = None,
                    atom_config: Optional[AtomicityConfig] = None,
                    taint_config: Optional[TaintConfig] = None,
                    leak_config: Optional[LeakConfig] = None,
                    select: Optional[Iterable[str]] = None,
                    ignore: Optional[Iterable[str]] = None,
                    baseline: Union[str, Path, None] = None,
                    source_overrides: Optional[Dict[str, str]] = None,
                    extra_modules: Optional[Iterable[Tuple[str, Path]]]
                    = None,
                    processes: Optional[int] = None) -> Report:
    """Run every selected rule family over a package tree.

    Parameters mirror :func:`repro.analysis.check_package`, plus:

    select / ignore:
        Rule IDs or family prefixes (``DET``, ``WAL001``, …).  Default:
        everything.
    baseline:
        Optional path to a baseline file; recorded findings are demoted to
        ``baselined`` severity and don't fail the run.
    processes:
        Run the rule-family groups in parallel worker processes (at most
        one per group).  Findings, counts, and baseline handling are
        identical to the serial path; ``None``/``1`` stays in-process.
    """
    config = config or DEFAULT_CONFIG
    det_config = det_config or DEFAULT_DET_CONFIG
    ordering_config = ordering_config or DEFAULT_ORDERING_CONFIG
    escape_config = escape_config or DEFAULT_ESCAPE_CONFIG
    conc_config = conc_config or DEFAULT_CONCURRENCY_CONFIG
    fork_config = fork_config or DEFAULT_FORKSAFETY_CONFIG
    atom_config = atom_config or DEFAULT_ATOMICITY_CONFIG
    taint_config = taint_config or DEFAULT_TAINT_CONFIG
    leak_config = leak_config or DEFAULT_LEAK_CONFIG
    rules = active_rules(select, ignore)

    package_dir = Path(package_dir) if package_dir is not None \
        else default_package_dir()

    if processes is not None and processes > 1:
        shards = [sorted(r for r in rules if r.startswith(group))
                  for group in _SHARD_GROUPS]
        shards = [shard for shard in shards if shard]
        if len(shards) > 1:
            return _analyze_parallel(
                shards, processes, package_dir=package_dir, config=config,
                det_config=det_config, ordering_config=ordering_config,
                escape_config=escape_config, conc_config=conc_config,
                fork_config=fork_config, atom_config=atom_config,
                taint_config=taint_config, leak_config=leak_config,
                rules=rules, baseline=baseline,
                source_overrides=source_overrides,
                extra_modules=extra_modules)

    index = build_index(package_dir, package=config.package,
                        source_overrides=source_overrides,
                        extra_modules=extra_modules)
    resolver = Resolver(index)

    findings: List[Finding] = []
    entry_points = 0
    classes_checked = 0
    functions_scanned = 0

    if any(rule.startswith("SIM") for rule in rules):
        walker = _Walker(index, resolver, config)
        classes = find_auditor_classes(index, resolver, config)
        for cls in classes:
            entry_points += walker.check_class(cls)
        classes_checked = len(classes)
        findings.extend(f for f in walker.findings if f.rule in rules)

    needs_effects = any(rule.startswith(("DET", "WAL", "BUD",
                                         "CONC", "FORK", "ATOM", "LEAK"))
                        for rule in rules)
    if needs_effects:
        engine = EffectEngine(index, resolver)
        functions_scanned = engine.functions_scanned
        if any(rule.startswith("DET") for rule in rules):
            det_findings, det_roots, _ = check_determinism(
                index, resolver, engine, sim_config=config,
                config=det_config)
            entry_points += det_roots
            findings.extend(f for f in det_findings if f.rule in rules)
        if any(rule.startswith(("WAL", "BUD")) for rule in rules):
            ord_findings, _ = check_ordering(
                index, resolver, engine, config=ordering_config,
                rules={r for r in rules if r.startswith(("WAL", "BUD"))})
            findings.extend(ord_findings)
        if any(rule.startswith(("CONC", "FORK", "ATOM", "LEAK"))
               for rule in rules):
            escape = EscapeEngine(index, resolver, engine,
                                  config=escape_config)
            if any(rule.startswith("CONC") for rule in rules):
                conc_findings, conc_roots = check_concurrency(
                    index, resolver, engine, escape, config=conc_config,
                    rules={r for r in rules if r.startswith("CONC")})
                entry_points += conc_roots
                findings.extend(conc_findings)
            if any(rule.startswith("FORK") for rule in rules):
                fork_findings, _ = check_forksafety(
                    index, resolver, engine, escape, config=fork_config,
                    rules={r for r in rules if r.startswith("FORK")})
                findings.extend(fork_findings)
            if any(rule.startswith("ATOM") for rule in rules):
                atom_findings, _ = check_atomics(
                    index, resolver, engine, escape, config=atom_config,
                    rules={r for r in rules if r.startswith("ATOM")})
                findings.extend(atom_findings)
            if any(rule.startswith("LEAK") for rule in rules):
                taint = TaintEngine(index, resolver, engine, escape,
                                    config=taint_config)
                leak_findings, _ = check_leaks(
                    index, resolver, engine, escape, taint,
                    config=leak_config,
                    rules={r for r in rules if r.startswith("LEAK")})
                findings.extend(leak_findings)

    report = Report(package=config.package, root=str(index.root),
                    findings=findings,
                    entry_points=entry_points,
                    classes_checked=classes_checked,
                    modules_scanned=len(index.modules),
                    functions_scanned=functions_scanned,
                    rules=sorted(rules))
    if baseline is not None:
        report = apply_baseline(report, load_baseline(baseline))
    return report


# ----------------------------------------------------------------------
# Parallel driver
# ----------------------------------------------------------------------

def _analysis_shard_worker(payload: Dict[str, Any], _rng: Any) -> Report:
    """One worker: run a single rule-family shard serially.

    Module-level (picklable) per the FORK001/FORK003 contract of
    :func:`repro.utility.parallel.run_sweep`; the payload carries only
    plain data and config dataclasses, never live handles.
    """
    return analyze_package(**payload)


def _analyze_parallel(shards: List[List[str]], processes: int,
                      package_dir: Path,
                      config: AnalysisConfig,
                      det_config: DeterminismConfig,
                      ordering_config: OrderingConfig,
                      escape_config: EscapeConfig,
                      conc_config: ConcurrencyConfig,
                      fork_config: ForkSafetyConfig,
                      atom_config: AtomicityConfig,
                      taint_config: TaintConfig,
                      leak_config: LeakConfig,
                      rules: Set[str],
                      baseline: Union[str, Path, None],
                      source_overrides: Optional[Dict[str, str]],
                      extra_modules: Optional[Iterable[Tuple[str, Path]]],
                      ) -> Report:
    """Fan the family shards out over processes and merge the reports."""
    from ..utility.parallel import run_sweep

    payloads = [
        {
            "package_dir": str(package_dir),
            "config": config,
            "det_config": det_config,
            "ordering_config": ordering_config,
            "escape_config": escape_config,
            "conc_config": conc_config,
            "fork_config": fork_config,
            "atom_config": atom_config,
            "taint_config": taint_config,
            "leak_config": leak_config,
            "select": shard,
            "source_overrides": source_overrides,
            "extra_modules": [(name, str(path))
                              for name, path in (extra_modules or ())],
            # baseline applied once, after the merge
            "baseline": None,
            "processes": None,
        }
        for shard in shards
    ]
    results = run_sweep(_analysis_shard_worker, payloads, trials=1,
                        rng=0, processes=min(processes, len(payloads)))
    reports: List[Report] = [results[i][0] for i in range(len(payloads))]

    findings = sorted(
        (f for report in reports for f in report.findings),
        key=lambda f: (f.file, f.line, f.col, f.rule, f.sink,
                       f.entry_class, f.entry_method))
    merged = Report(
        package=reports[0].package,
        root=reports[0].root,
        findings=findings,
        entry_points=sum(r.entry_points for r in reports),
        classes_checked=max(r.classes_checked for r in reports),
        modules_scanned=max(r.modules_scanned for r in reports),
        functions_scanned=max(r.functions_scanned for r in reports),
        rules=sorted(rules),
    )
    if baseline is not None:
        merged = apply_baseline(merged, load_baseline(baseline))
    return merged
