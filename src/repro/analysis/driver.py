"""Full-analysis orchestration: SIM/DET/WAL/BUD/CONC/FORK/ATOM in one pass.

Builds the package index, the call-graph resolver, and the effect-summary
engine exactly once, runs every selected rule family over them, and merges
the findings into one :class:`~repro.analysis.findings.Report`.  This is
what ``repro-audit lint`` runs; :func:`repro.analysis.check_package`
remains the SIM-only library entry point.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from .atomics import DEFAULT_ATOMICITY_CONFIG, AtomicityConfig, \
    check_atomics
from .baseline import apply_baseline, load_baseline
from .callgraph import Resolver
from .concurrency import DEFAULT_CONCURRENCY_CONFIG, ConcurrencyConfig, \
    check_concurrency
from .determinism import DEFAULT_DET_CONFIG, DeterminismConfig, \
    check_determinism
from .escape import DEFAULT_ESCAPE_CONFIG, EscapeConfig, EscapeEngine
from .findings import ALL_RULES, Finding, Report, expand_rule_selection
from .forksafety import DEFAULT_FORKSAFETY_CONFIG, ForkSafetyConfig, \
    check_forksafety
from .modindex import build_index
from .ordering import DEFAULT_ORDERING_CONFIG, OrderingConfig, \
    check_ordering
from .purity import EffectEngine
from .simulatability import (
    DEFAULT_CONFIG,
    AnalysisConfig,
    _Walker,
    default_package_dir,
    find_auditor_classes,
)


def active_rules(select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None) -> Set[str]:
    """The rule set a ``--select``/``--ignore`` pair leaves enabled."""
    selected = expand_rule_selection(list(select) if select else None)
    ignored = expand_rule_selection(list(ignore) if ignore else None)
    rules = set(ALL_RULES) if selected is None else selected
    if ignored:
        rules -= ignored
    return rules


def analyze_package(package_dir: Union[str, Path, None] = None,
                    config: Optional[AnalysisConfig] = None,
                    det_config: Optional[DeterminismConfig] = None,
                    ordering_config: Optional[OrderingConfig] = None,
                    escape_config: Optional[EscapeConfig] = None,
                    conc_config: Optional[ConcurrencyConfig] = None,
                    fork_config: Optional[ForkSafetyConfig] = None,
                    atom_config: Optional[AtomicityConfig] = None,
                    select: Optional[Iterable[str]] = None,
                    ignore: Optional[Iterable[str]] = None,
                    baseline: Union[str, Path, None] = None,
                    source_overrides: Optional[Dict[str, str]] = None,
                    extra_modules: Optional[Iterable[Tuple[str, Path]]]
                    = None) -> Report:
    """Run every selected rule family over a package tree.

    Parameters mirror :func:`repro.analysis.check_package`, plus:

    select / ignore:
        Rule IDs or family prefixes (``DET``, ``WAL001``, …).  Default:
        everything.
    baseline:
        Optional path to a baseline file; recorded findings are demoted to
        ``baselined`` severity and don't fail the run.
    """
    config = config or DEFAULT_CONFIG
    det_config = det_config or DEFAULT_DET_CONFIG
    ordering_config = ordering_config or DEFAULT_ORDERING_CONFIG
    escape_config = escape_config or DEFAULT_ESCAPE_CONFIG
    conc_config = conc_config or DEFAULT_CONCURRENCY_CONFIG
    fork_config = fork_config or DEFAULT_FORKSAFETY_CONFIG
    atom_config = atom_config or DEFAULT_ATOMICITY_CONFIG
    rules = active_rules(select, ignore)

    package_dir = Path(package_dir) if package_dir is not None \
        else default_package_dir()
    index = build_index(package_dir, package=config.package,
                        source_overrides=source_overrides,
                        extra_modules=extra_modules)
    resolver = Resolver(index)

    findings: List[Finding] = []
    entry_points = 0
    classes_checked = 0
    functions_scanned = 0

    if any(rule.startswith("SIM") for rule in rules):
        walker = _Walker(index, resolver, config)
        classes = find_auditor_classes(index, resolver, config)
        for cls in classes:
            entry_points += walker.check_class(cls)
        classes_checked = len(classes)
        findings.extend(f for f in walker.findings if f.rule in rules)

    needs_effects = any(rule.startswith(("DET", "WAL", "BUD",
                                         "CONC", "FORK", "ATOM"))
                        for rule in rules)
    if needs_effects:
        engine = EffectEngine(index, resolver)
        functions_scanned = engine.functions_scanned
        if any(rule.startswith("DET") for rule in rules):
            det_findings, det_roots, _ = check_determinism(
                index, resolver, engine, sim_config=config,
                config=det_config)
            entry_points += det_roots
            findings.extend(f for f in det_findings if f.rule in rules)
        if any(rule.startswith(("WAL", "BUD")) for rule in rules):
            ord_findings, _ = check_ordering(
                index, resolver, engine, config=ordering_config,
                rules={r for r in rules if r.startswith(("WAL", "BUD"))})
            findings.extend(ord_findings)
        if any(rule.startswith(("CONC", "FORK", "ATOM")) for rule in rules):
            escape = EscapeEngine(index, resolver, engine,
                                  config=escape_config)
            if any(rule.startswith("CONC") for rule in rules):
                conc_findings, conc_roots = check_concurrency(
                    index, resolver, engine, escape, config=conc_config,
                    rules={r for r in rules if r.startswith("CONC")})
                entry_points += conc_roots
                findings.extend(conc_findings)
            if any(rule.startswith("FORK") for rule in rules):
                fork_findings, _ = check_forksafety(
                    index, resolver, engine, escape, config=fork_config,
                    rules={r for r in rules if r.startswith("FORK")})
                findings.extend(fork_findings)
            if any(rule.startswith("ATOM") for rule in rules):
                atom_findings, _ = check_atomics(
                    index, resolver, engine, escape, config=atom_config,
                    rules={r for r in rules if r.startswith("ATOM")})
                findings.extend(atom_findings)

    report = Report(package=config.package, root=str(index.root),
                    findings=findings,
                    entry_points=entry_points,
                    classes_checked=classes_checked,
                    modules_scanned=len(index.modules),
                    functions_scanned=functions_scanned,
                    rules=sorted(rules))
    if baseline is not None:
        report = apply_baseline(report, load_baseline(baseline))
    return report
