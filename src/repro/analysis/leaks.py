"""LEAK rules: sensitive values must not escape through side channels.

Simulatability (the paper's central property) is stated over everything
the auditor *emits*, not just released answers.  The SIM family proves
decision paths do not read sensitive state; this family consumes the
value-level taint flows of :mod:`repro.analysis.taintflow` and proves
sensitive *values* cannot flow out through the unsanctioned channels:

* ``LEAK001`` — a tainted value reaches an exception message or a
  denial-detail string.  In *strict* mode (the default) any denial
  detail that is not built from constants also fires: denial reasons
  must be fixed reason codes, because a detail that varies with the
  data (a set size, a threshold comparison, a sampled value) is an
  oracle even when each piece looks attacker-computable;
* ``LEAK002`` — a tainted value reaches logging / ``print`` / CSV-export
  output outside the released-answer path;
* ``LEAK003`` — a tainted value is serialized into a journal/WAL append
  or a replication frame beyond the released decision record (the
  decision record itself is public: it crosses the release boundary);
* ``LEAK004`` — a tainted value is stored on thread-shared state (a
  class the escape analysis marks as crossing thread boundaries), where
  any other request's handler could read it back.

Findings are suppressed the usual way: a ``# audit: LEAK001 -- reason``
pragma on (or just above) the sink line documents a vetted false
positive — e.g. a classic auditor whose denial detail is derived only
from *past released answers* and is therefore simulatable by
construction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import Resolver
from .escape import EscapeEngine
from .findings import (
    RULE_TAINTED_EXCEPTION,
    RULE_TAINTED_JOURNAL,
    RULE_TAINTED_LOG,
    RULE_TAINTED_SHARED_STATE,
    Finding,
    Frame,
)
from .modindex import ClassInfo, FunctionNode, PackageIndex
from .purity import EffectEngine
from .taintflow import SOURCE, SinkEvent, TaintEngine


@dataclass
class LeakConfig:
    """Emission policy for the LEAK rules."""

    #: also fire LEAK001 on denial details that are *not* constant
    #: expressions, tainted or not (denials must be fixed reason codes)
    strict_denial_details: bool = True


DEFAULT_LEAK_CONFIG = LeakConfig()

#: sink-event kind (see :class:`~repro.analysis.taintflow.SinkEvent`)
#: -> the rule it violates
KIND_RULES: Dict[str, str] = {
    "raise": RULE_TAINTED_EXCEPTION,
    "deny": RULE_TAINTED_EXCEPTION,
    "log": RULE_TAINTED_LOG,
    "journal": RULE_TAINTED_JOURNAL,
    "shared": RULE_TAINTED_SHARED_STATE,
}

_MESSAGES = {
    "raise": ("a sensitive-tainted value reaches an exception message "
              "(scrub the payload; keep len()/count projections only)"),
    "deny": ("a sensitive-tainted value reaches a denial-detail string "
             "(denial reasons must be generic reason codes)"),
    "log": ("a sensitive-tainted value flows into log/print/export output "
            "outside the released-answer path"),
    "journal": ("a sensitive-tainted value is serialized into a "
                "journal/WAL/replication payload beyond the released "
                "decision record"),
    "shared": ("a sensitive-tainted value is stored on thread-shared "
               "state where other requests can observe it"),
}

_STRICT_DENY_MESSAGE = (
    "denial detail is not a constant reason string (sizes, thresholds, "
    "and computed values in denials are an oracle for the data)")


class _LeakChecker:
    def __init__(self, index: PackageIndex, taint: TaintEngine,
                 config: LeakConfig) -> None:
        self.index = index
        self.taint = taint
        self.config = config
        self.findings: List[Finding] = []
        self.functions_checked = 0
        self._seen: Set[Tuple[str, str, int, int, str]] = set()

    def check_function(self, module: str, node: FunctionNode,
                       self_class: Optional[ClassInfo]) -> None:
        self.functions_checked += 1
        for event in self.taint.events_for(node):
            self._check_event(module, node, self_class, event)

    def _check_event(self, module: str, node: FunctionNode,
                     self_class: Optional[ClassInfo],
                     event: SinkEvent) -> None:
        rule = KIND_RULES[event.kind]
        tainted = SOURCE in event.origins
        if event.kind == "deny":
            if tainted:
                message = _MESSAGES["deny"]
            elif (self.config.strict_denial_details
                    and not event.constantish):
                message = _STRICT_DENY_MESSAGE
            else:
                return
        else:
            if not tainted:
                return
            message = _MESSAGES[event.kind]
        if event.via is not None:
            message += f" (flows through {event.via}())"
        self._emit(rule, module, event.node, event.sink, message,
                   self_class, node.name)

    def _emit(self, rule: str, module: str, node: ast.AST, sink: str,
              message: str, self_class: Optional[ClassInfo],
              method: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        key = (rule, module, line, col, sink)
        if key in self._seen:
            return
        self._seen.add(key)
        pragma = self.index.pragma_for(module, rule, line)
        entry_class = self_class.name if self_class is not None else ""
        frame = Frame(
            function=f"{entry_class}.{method}" if entry_class else method,
            module=module,
            file=self.index.relpath(module),
            line=line,
        )
        self.findings.append(Finding(
            rule=rule,
            message=message,
            file=self.index.relpath(module),
            line=line,
            col=col,
            entry_class=entry_class,
            entry_method=method,
            entry_module=module,
            sink=sink,
            chain=(frame,),
            pragma_reason=pragma,
        ))


def check_leaks(index: PackageIndex, resolver: Resolver,
                engine: EffectEngine, escape: EscapeEngine,
                taint: TaintEngine,
                config: Optional[LeakConfig] = None,
                rules: Optional[Set[str]] = None,
                ) -> Tuple[List[Finding], int]:
    """Run the LEAK rules over every function of the package.

    ``resolver``/``engine``/``escape`` are accepted for signature symmetry
    with the sibling checkers (the taint engine already consumed them);
    ``rules`` optionally restricts which of LEAK001–LEAK004 emit.
    """
    config = config or DEFAULT_LEAK_CONFIG
    checker = _LeakChecker(index, taint, config)
    for mod in sorted(index.modules.values(), key=lambda m: m.name):
        for node in mod.functions.values():
            checker.check_function(mod.name, node, None)
        for cls in mod.classes.values():
            for node in cls.methods.values():
                checker.check_function(mod.name, node, cls)
    findings = checker.findings
    if rules is not None:
        findings = [f for f in findings if f.rule in rules]
    return findings, checker.functions_checked
