"""Package indexing for the simulatability analyzer.

Parses every module of a package into an AST once and builds the symbol
tables the call-graph layer needs: per-module import aliases (resolved to
fully-qualified dotted names), module-level functions, classes with their
methods, and the ``# simulatability:`` pragma lines of each file.

The index is purely syntactic — nothing is imported or executed — so it can
analyse a source tree that is not installed (the CLI's ``--package-dir``)
and tests can analyse modified sources via ``source_overrides``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: ``# simulatability: violation -- reason`` (reason optional).  Legacy
#: syntax; covers the SIM rule family only.
PRAGMA_RE = re.compile(
    r"#\s*simulatability:\s*violation\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)

#: ``# audit: DET001 -- reason`` / ``# audit: WAL001,BUD001 -- reason``.
#: Rule tokens may be full IDs (``DET003``) or family prefixes (``DET``).
AUDIT_PRAGMA_RE = re.compile(
    r"#\s*audit:\s*(?P<rules>[A-Z]{2,4}\d*(?:\s*,\s*[A-Z]{2,4}\d*)*)"
    r"\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Pragma:
    """One documented-violation pragma line.

    ``rules`` is None for the legacy ``# simulatability: violation`` form
    (which covers the SIM family); otherwise the explicit rule IDs or
    family prefixes of an ``# audit:`` pragma.
    """

    reason: str
    rules: Optional[frozenset] = None

    def covers(self, rule: str) -> bool:
        if self.rules is None:
            return rule.startswith("SIM")
        return any(rule == token or rule.startswith(token)
                   for token in self.rules)


@dataclass
class ClassInfo:
    """One class definition and what the analyzer knows about it."""

    name: str
    module: str                                  #: dotted module name
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)   #: raw base expressions
    methods: Dict[str, FunctionNode] = field(default_factory=dict)
    #: instance attribute -> qualified class name (from ``self.x = Cls(...)``
    #: assignments and annotations); filled in by the call-graph layer.
    attr_types: Dict[str, str] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class ModuleInfo:
    """One parsed module of the package."""

    name: str                                    #: dotted module name
    path: Path
    tree: ast.Module
    #: local alias -> fully-qualified dotted target.  ``from ..sdb.aggregates
    #: import true_answer`` maps ``true_answer`` to
    #: ``repro.sdb.aggregates.true_answer``; ``import numpy as np`` maps
    #: ``np`` to ``numpy``.
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionNode] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: 1-based line numbers carrying a violation pragma.
    pragmas: Dict[int, Pragma] = field(default_factory=dict)


class PackageIndex:
    """All modules of one package, parsed and cross-indexed."""

    def __init__(self, package: str, root: Path,
                 modules: Dict[str, ModuleInfo]) -> None:
        self.package = package
        self.root = root              #: directory *containing* the package
        self.modules = modules
        # classes by qualified name for hierarchy resolution
        self.classes: Dict[str, ClassInfo] = {}
        for mod in modules.values():
            for cls in mod.classes.values():
                self.classes[cls.qualname] = cls

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------

    def resolve_dotted(self, dotted: str) -> Optional[Tuple[str, str]]:
        """Split a fully-qualified name into ``(module, symbol)``.

        Returns None when the prefix is not a module of this package (e.g.
        numpy names).  A bare module name resolves to ``(module, "")``.
        """
        if dotted in self.modules:
            return dotted, ""
        head, _, tail = dotted.rpartition(".")
        while head:
            if head in self.modules:
                return head, tail
            head, _, more = head.rpartition(".")
            tail = f"{more}.{tail}"
        return None

    def lookup_class(self, module: str, name: str) -> Optional[ClassInfo]:
        """Resolve ``name`` as written inside ``module`` to a ClassInfo."""
        mod = self.modules.get(module)
        if mod is None:
            return None
        if name in mod.classes:
            return mod.classes[name]
        target = mod.imports.get(name)
        if target is None:
            return None
        resolved = self.resolve_dotted(target)
        if resolved is None:
            return None
        target_mod, symbol = resolved
        if not symbol:
            return None
        return self.modules[target_mod].classes.get(symbol)

    def lookup_function(self, module: str,
                        name: str) -> Optional[Tuple[str, FunctionNode]]:
        """Resolve a bare function name used inside ``module``.

        Returns ``(defining_module, node)`` or None.
        """
        mod = self.modules.get(module)
        if mod is None:
            return None
        if name in mod.functions:
            return module, mod.functions[name]
        target = mod.imports.get(name)
        if target is None:
            return None
        resolved = self.resolve_dotted(target)
        if resolved is None:
            return None
        target_mod, symbol = resolved
        if not symbol:
            return None
        node = self.modules[target_mod].functions.get(symbol)
        if node is None:
            return None
        return target_mod, node

    def qualify(self, module: str, name: str) -> Optional[str]:
        """The fully-qualified dotted target a name refers to, if imported."""
        mod = self.modules.get(module)
        if mod is None:
            return None
        if name in mod.functions or name in mod.classes:
            return f"{module}.{name}"
        return mod.imports.get(name)

    def pragma_for(self, module: str, rule: str,
                   *lines: int) -> Optional[str]:
        """The pragma reason covering ``rule`` at any of ``lines``.

        A pragma documents the statement on its own line; a pragma written
        as a standalone comment documents the statement on the next line, so
        each queried line also checks the two lines directly above it.
        """
        mod = self.modules.get(module)
        if mod is None or not mod.pragmas:
            return None
        for line in lines:
            for probe in (line, line - 1, line - 2):
                pragma = mod.pragmas.get(probe)
                if pragma is not None and pragma.covers(rule):
                    return pragma.reason or "(no reason given)"
        return None

    def pragma_reason(self, module: str, *lines: int) -> Optional[str]:
        """Legacy SIM-family lookup (kept for API compatibility)."""
        return self.pragma_for(module, "SIM", *lines)

    def relpath(self, module: str) -> str:
        """Module path relative to the analysis root (for findings)."""
        mod = self.modules[module]
        try:
            return str(mod.path.relative_to(self.root))
        except ValueError:
            return str(mod.path)


# ----------------------------------------------------------------------
# Building the index
# ----------------------------------------------------------------------

def _module_name(package: str, package_dir: Path, path: Path) -> str:
    rel = path.relative_to(package_dir)
    parts = list(rel.parts)
    parts[-1] = parts[-1][:-3]  # strip .py
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package] + parts)


def _collect_imports(module: str, tree: ast.Module,
                     is_package: bool) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    out[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                # Relative import: drop ``level`` trailing components from
                # the importing module's package path.
                parts = module.split(".")
                if not is_package:
                    parts = parts[:-1]
                anchor = parts[:len(parts) - (node.level - 1)] if node.level > 1 else parts
                base = ".".join(anchor)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                out[local] = f"{base}.{alias.name}" if base else alias.name
    return out


def _collect_pragmas(source: str) -> Dict[int, Pragma]:
    pragmas: Dict[int, Pragma] = {}
    lines = source.splitlines()
    for lineno, line in enumerate(lines, start=1):
        rules: Optional[frozenset] = None
        match = PRAGMA_RE.search(line)
        if not match:
            match = AUDIT_PRAGMA_RE.search(line)
            if not match:
                continue
            rules = frozenset(token.strip() for token in
                              match.group("rules").split(","))
        reason = (match.group("reason") or "").strip()
        # A pragma reason may wrap onto following pure-comment lines.
        probe = lineno  # 0-based index of the next line
        while probe < len(lines):
            stripped = lines[probe].strip()
            if (not stripped.startswith("#")
                    or PRAGMA_RE.search(stripped)
                    or AUDIT_PRAGMA_RE.search(stripped)):
                break
            reason = f"{reason} {stripped.lstrip('#').strip()}".strip()
            probe += 1
        pragmas[lineno] = Pragma(reason=reason, rules=rules)
    return pragmas


def _collect_classes(module: str, tree: ast.Module) -> Dict[str, ClassInfo]:
    classes: Dict[str, ClassInfo] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        info = ClassInfo(name=node.name, module=module, node=node)
        for base in node.bases:
            try:
                info.bases.append(ast.unparse(base))
            except Exception:  # pragma: no cover - exotic base expressions
                continue
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[item.name] = item
            elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name):
                # class-level annotation: ``attr: SomeClass``
                try:
                    info.attr_types[item.target.id] = ast.unparse(
                        item.annotation)
                except Exception:  # pragma: no cover
                    pass
        classes[node.name] = info
    return classes


def build_index(package_dir: Union[str, Path],
                package: Optional[str] = None,
                source_overrides: Optional[Dict[str, str]] = None,
                extra_modules: Optional[Iterable[Tuple[str, Path]]] = None,
                ) -> PackageIndex:
    """Parse every ``.py`` file under ``package_dir`` into a PackageIndex.

    Parameters
    ----------
    package_dir:
        Directory of the package itself (the one holding ``__init__.py``).
    package:
        Dotted package name; defaults to the directory name.
    source_overrides:
        ``{relative/or/absolute path: replacement source}`` — lets tests
        analyse edited sources (e.g. a pragma stripped) without touching
        the tree.
    extra_modules:
        Extra ``(dotted_name, path)`` modules indexed alongside the package
        (used by tests to inject fixture auditors).
    """
    package_dir = Path(package_dir).resolve()
    if not package_dir.is_dir():
        raise FileNotFoundError(f"package directory not found: {package_dir}")
    package = package or package_dir.name
    overrides: Dict[str, str] = {}
    for key, text in (source_overrides or {}).items():
        overrides[str(Path(key))] = text

    def read_source(path: Path) -> str:
        for candidate in (str(path),
                          str(path.relative_to(package_dir.parent))
                          if str(path).startswith(str(package_dir.parent))
                          else str(path)):
            if candidate in overrides:
                return overrides[candidate]
        return path.read_text(encoding="utf-8")

    modules: Dict[str, ModuleInfo] = {}

    def index_one(name: str, path: Path, is_package: bool) -> None:
        source = read_source(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return  # unparsable files simply stay out of the call graph
        info = ModuleInfo(name=name, path=path, tree=tree)
        info.imports = _collect_imports(name, tree, is_package)
        info.pragmas = _collect_pragmas(source)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[node.name] = node
        info.classes = _collect_classes(name, tree)
        modules[name] = info

    for path in sorted(package_dir.rglob("*.py")):
        name = _module_name(package, package_dir, path)
        index_one(name, path, is_package=path.name == "__init__.py")
    for name, path in (extra_modules or ()):
        index_one(name, Path(path), is_package=False)

    return PackageIndex(package, package_dir.parent, modules)
