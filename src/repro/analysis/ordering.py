"""WAL and BUD rules: fail-closed ordering and budget checkpoints.

The serving contract (PR 2) is *answer released ⇒ record durable*: every
decision — answers **and** denials — must be appended to the audit journal
before the caller can observe it, including the cache-hit ``query_replay``
path.  These rules prove the ordering statically:

* ``WAL001`` — a release method (``audit`` / ``_audit`` / ``query`` /
  ``record_replay`` / ``apply_update``, or any method of a journal-holding
  class) contains a ``return`` that is **not dominated** by a journal
  append on every path (must-analysis over the per-function CFG; an
  exception edge out of the append itself correctly de-dominates the
  handler paths);
* ``WAL002`` — an exception handler around a journal append that can
  complete without re-raising while the function can still release a value
  (fail-open: the append failure is swallowed);
* ``BUD001`` — a loop in a sampler/chain module that does real work (a
  fault site or a randomness draw, directly or transitively) without a
  ``Budget`` checkpoint in its body, so budget exhaustion could not cancel
  it cooperatively.

Delegation is understood: in a non-journal-holding class, ``return
self.auditor.audit(query)`` passes the whole release+journal obligation
down, so it *satisfies* domination; inside a journal boundary class (one
whose attrs hold an ``AuditJournal``/``WriteAheadLog``) only real appends
count — reordering ``JournaledAuditor.audit`` is exactly what WAL001 is
for.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import Resolver, TypeEnv
from .cfg import build_cfg, must_pass_before, stmt_expr_nodes
from .findings import (
    RULE_RELEASE_BEFORE_APPEND,
    RULE_SWALLOWED_APPEND_FAILURE,
    RULE_UNCHECKPOINTED_LOOP,
    Finding,
    Frame,
)
from .modindex import ClassInfo, FunctionNode, PackageIndex
from .purity import EffectEngine, getattr_append_locals, iter_calls


@dataclass
class OrderingConfig:
    """Scope of the WAL/BUD scans."""

    #: method names whose return values are released decisions/answers
    release_method_names: Tuple[str, ...] = (
        "audit", "_audit", "query", "query_indices", "record_replay",
        "apply_update",
        # serving-tier release points: the multi-user frontend's entry
        # methods and the shard worker's request handler (the single
        # release point of a shard — every dict it returns is released)
        "ask", "refuse", "handle",
    )
    #: classes holding the journal: delegation does not discharge the
    #: append obligation inside these
    boundary_attr_types: Tuple[str, ...] = (
        "repro.persistence.AuditJournal",
        "repro.resilience.wal.WriteAheadLog",
    )
    boundary_attr_names: Tuple[str, ...] = ("journal", "wal")
    #: module-name tokens marking sampler/chain hot-path modules (BUD001)
    sampler_module_tokens: Tuple[str, ...] = ("sampler", "chain",
                                              "hit_and_run")


DEFAULT_ORDERING_CONFIG = OrderingConfig()


class _OrderingChecker:
    def __init__(self, index: PackageIndex, resolver: Resolver,
                 engine: EffectEngine, config: OrderingConfig) -> None:
        self.index = index
        self.resolver = resolver
        self.engine = engine
        self.config = config
        self.findings: List[Finding] = []
        self.functions_checked = 0
        self._boundary_cache: Dict[str, bool] = {}

    # -- scope ----------------------------------------------------------

    def is_boundary_class(self, cls: Optional[ClassInfo]) -> bool:
        """Does the class (transitively) hold the journal/WAL itself?"""
        if cls is None:
            return False
        cached = self._boundary_cache.get(cls.qualname)
        if cached is not None:
            return cached
        self._boundary_cache[cls.qualname] = False  # cycle guard
        result = False
        attrs = self.resolver.instance_attr_types(cls)
        for attr, attr_cls in attrs.items():
            if attr_cls.qualname in self.config.boundary_attr_types:
                result = True
                break
        if not result:
            # name-based fallback for untyped ``self.wal = wal`` params
            for c in self.resolver.mro(cls):
                for method in c.methods.values():
                    env = self.resolver.param_env(c.module, method,
                                                  self_class=c)
                    for stmt in ast.walk(method):
                        if (isinstance(stmt, ast.Assign)
                                and len(stmt.targets) == 1
                                and isinstance(stmt.targets[0],
                                               ast.Attribute)
                                and isinstance(stmt.targets[0].value,
                                               ast.Name)
                                and stmt.targets[0].value.id
                                == env.self_name
                                and stmt.targets[0].attr
                                in self.config.boundary_attr_names):
                            result = True
                if result:
                    break
        self._boundary_cache[cls.qualname] = result
        return result

    # -- the per-function checks ---------------------------------------

    def check_function(self, module: str, node: FunctionNode,
                       self_class: Optional[ClassInfo]) -> None:
        self.functions_checked += 1
        qualname = (f"{self_class.qualname}.{node.name}"
                    if self_class is not None
                    else f"{module}.{node.name}")
        if qualname in self.engine.config.append_functions:
            return  # the journal primitives themselves ARE the append
        env = self.resolver.param_env(module, node, self_class=self_class)
        self._infer_assign_types(node, env)
        boundary = self.is_boundary_class(self_class)
        in_release_scope = (node.name in self.config.release_method_names
                            or boundary)
        mod = self.index.modules[module]
        is_sampler_module = any(
            token in mod.name.rsplit(".", 1)[-1]
            for token in self.config.sampler_module_tokens)

        if in_release_scope:
            self._check_wal(module, node, self_class, env, boundary)
        if is_sampler_module:
            self._check_bud(module, node, self_class, env)

    def _infer_assign_types(self, node: FunctionNode, env: TypeEnv) -> None:
        assigns = [stmt for stmt in ast.walk(node)
                   if isinstance(stmt, ast.Assign)]
        assigns.sort(key=lambda stmt: stmt.lineno)
        for stmt in assigns:
            if len(stmt.targets) != 1 or not isinstance(stmt.targets[0],
                                                        ast.Name):
                continue
            inferred = self.resolver.infer_type(stmt.value, env)
            if inferred is not None:
                env.locals[stmt.targets[0].id] = inferred

    # -- WAL001 / WAL002 ------------------------------------------------

    def _check_wal(self, module: str, node: FunctionNode,
                   self_class: Optional[ClassInfo], env: TypeEnv,
                   boundary: bool) -> None:
        graph = build_cfg(node)
        bound = getattr_append_locals(node, self.engine.config)
        real_append_sids: Set[int] = set()
        delegate_sids: Set[int] = set()
        satisfying_sids: Set[int] = set()
        for stmt in graph.statements():
            appends = False
            delegates = False
            for call in stmt_expr_nodes(stmt, (ast.Call,)):
                facts = self.engine.merged_facts(call, module, env,
                                                 getattr_appends=bound)
                appends |= facts.appends
                delegates |= facts.delegates_audit
            if appends:
                real_append_sids.add(stmt.sid)
                satisfying_sids.add(stmt.sid)
            if delegates and not boundary:
                # delegation hands the release+journal obligation down
                delegate_sids.add(stmt.sid)
                satisfying_sids.add(stmt.sid)
        # A named release method is this rule's business if it journals
        # anywhere OR hands the obligation to a delegate: a cache-hit
        # branch that skips both must still be caught.
        named_release = node.name in self.config.release_method_names
        if not real_append_sids and not (named_release and delegate_sids):
            return  # nothing journals here: not this rule's business

        for ret_sid in graph.returns:
            ret = graph.nodes[ret_sid]
            ret_node = ret.node
            if (not isinstance(ret_node, ast.Return)
                    or ret_node.value is None
                    or (isinstance(ret_node.value, ast.Constant)
                        and ret_node.value.value is None)):
                continue  # returning nothing releases nothing
            if ret_sid in satisfying_sids:
                continue  # ``return journal.record_and_give(...)`` style
            if must_pass_before(graph, satisfying_sids, ret_sid):
                continue
            self._emit(
                RULE_RELEASE_BEFORE_APPEND, module, ret_node,
                sink=f"return in {node.name}()",
                message="a code path releases a value with no dominating "
                        "audit-journal append (fail-closed ordering)",
                self_class=self_class, method=node.name)

        self._check_wal002(module, node, self_class, env, bound)

    def _check_wal002(self, module: str, node: FunctionNode,
                      self_class: Optional[ClassInfo], env: TypeEnv,
                      bound: Set[str]) -> None:
        tries: List[ast.Try] = []

        def visit(current: ast.AST) -> None:
            for child in ast.iter_child_nodes(current):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                if isinstance(child, ast.Try):
                    tries.append(child)
                visit(child)

        visit(node)
        for stmt in tries:
            try_appends = any(
                self.engine.merged_facts(call, module, env,
                                         getattr_appends=bound).appends
                for body_stmt in stmt.body
                for call in iter_calls(body_stmt))
            if not try_appends:
                continue
            for handler in stmt.handlers:
                if self._handler_fails_closed(handler):
                    continue
                self._emit(
                    RULE_SWALLOWED_APPEND_FAILURE, module, handler,
                    sink=f"except handler in {node.name}()",
                    message="exception handler swallows a journal-write "
                            "failure while the function can still release "
                            "a value (re-raise or return a denial "
                            "without answering)",
                    self_class=self_class, method=node.name)

    @staticmethod
    def _handler_fails_closed(handler: ast.ExceptHandler) -> bool:
        """A handler is fine if it re-raises or returns no value."""
        for stmt in handler.body:
            if isinstance(stmt, ast.Raise):
                return True
        last = handler.body[-1] if handler.body else None
        if isinstance(last, ast.Return):
            value = last.value
            return value is None or (isinstance(value, ast.Constant)
                                     and value.value is None)
        return False

    # -- BUD001 ---------------------------------------------------------

    def _check_bud(self, module: str, node: FunctionNode,
                   self_class: Optional[ClassInfo], env: TypeEnv) -> None:
        loops: List[ast.AST] = []
        comps: List[ast.AST] = []

        def visit(current: ast.AST) -> None:
            for child in ast.iter_child_nodes(current):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                    loops.append(child)
                elif isinstance(child, (ast.ListComp, ast.SetComp,
                                        ast.GeneratorExp)):
                    comps.append(child)
                visit(child)

        visit(node)
        for loop in loops:
            does_work, checkpoints = self._body_effects(
                loop.body, module, env)
            if does_work and not checkpoints:
                self._emit(
                    RULE_UNCHECKPOINTED_LOOP, module, loop,
                    sink=f"loop in {node.name}()",
                    message="sampler/chain loop draws randomness or passes "
                            "a fault site with no Budget checkpoint in its "
                            "body (budget exhaustion cannot cancel it)",
                    self_class=self_class, method=node.name)
        for comp in comps:
            does_work, checkpoints = self._body_effects(
                [ast.Expr(value=comp.elt)] if hasattr(comp, "elt")
                else [], module, env)
            if does_work and not checkpoints:
                self._emit(
                    RULE_UNCHECKPOINTED_LOOP, module, comp,
                    sink=f"comprehension in {node.name}()",
                    message="sampler/chain comprehension draws randomness "
                            "with no Budget checkpoint per element",
                    self_class=self_class, method=node.name)

    def _body_effects(self, body: List[ast.stmt], module: str,
                      env: TypeEnv) -> Tuple[bool, bool]:
        """(does randomness/fault-site work, has a checkpoint)."""
        does_work = False
        checkpoints = False
        for stmt in body:
            for call in iter_calls(stmt):
                facts = self.engine.merged_facts(call, module, env)
                does_work |= bool(facts.draws or facts.fault_site)
                checkpoints |= facts.checkpoints
        return does_work, checkpoints

    # -- emission -------------------------------------------------------

    def _emit(self, rule: str, module: str, node: ast.AST, sink: str,
              message: str, self_class: Optional[ClassInfo],
              method: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        pragma = self.index.pragma_for(module, rule, line)
        entry_class = self_class.name if self_class is not None else ""
        frame = Frame(
            function=f"{entry_class}.{method}" if entry_class else method,
            module=module,
            file=self.index.relpath(module),
            line=line,
        )
        self.findings.append(Finding(
            rule=rule,
            message=message,
            file=self.index.relpath(module),
            line=line,
            col=col,
            entry_class=entry_class,
            entry_method=method,
            entry_module=module,
            sink=sink,
            chain=(frame,),
            pragma_reason=pragma,
        ))


def check_ordering(index: PackageIndex, resolver: Resolver,
                   engine: EffectEngine,
                   config: Optional[OrderingConfig] = None,
                   rules: Optional[Set[str]] = None,
                   ) -> Tuple[List[Finding], int]:
    """Run the WAL/BUD rules over every function of the package.

    ``rules`` optionally restricts which of WAL001/WAL002/BUD001 emit;
    scanning is cheap enough to always run whole-package.
    """
    config = config or DEFAULT_ORDERING_CONFIG
    checker = _OrderingChecker(index, resolver, engine, config)
    for mod in sorted(index.modules.values(), key=lambda m: m.name):
        for node in mod.functions.values():
            checker.check_function(mod.name, node, None)
        for cls in mod.classes.values():
            for node in cls.methods.values():
                checker.check_function(mod.name, node, cls)
    findings = checker.findings
    if rules is not None:
        findings = [f for f in findings if f.rule in rules]
    return findings, checker.functions_checked
