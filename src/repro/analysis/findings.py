"""Finding and report types for the static analyzers.

A *finding* is one rule hit (a sensitive read on a decision path, an
unseeded RNG call in a sampler, a release not dominated by a journal
append, …) together with the call chain that reaches it.  Findings are
plain data so they serialise to a stable JSON schema (``SCHEMA_VERSION``)
that the CLI, the pytest gates, the SARIF emitter, and CI all consume.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Bumped only when the JSON layout changes incompatibly.
#: v2: per-finding ``fingerprint`` (baseline key), report-level ``rules``,
#: ``baselined`` severity/count, ``functions_scanned`` count.
SCHEMA_VERSION = 2

#: Rule identifiers, stable across releases.
RULE_TRUE_ANSWER = "SIM001"
RULE_SENSITIVE_READ = "SIM002"
RULE_SENSITIVE_ESCAPE = "SIM003"
RULE_UNSEEDED_RNG = "DET001"
RULE_WALLCLOCK_READ = "DET002"
RULE_UNORDERED_ITERATION = "DET003"
RULE_UNORDERED_ACCUMULATION = "DET004"
RULE_RELEASE_BEFORE_APPEND = "WAL001"
RULE_SWALLOWED_APPEND_FAILURE = "WAL002"
RULE_UNCHECKPOINTED_LOOP = "BUD001"
RULE_UNGUARDED_GUARDED_STATE = "CONC001"
RULE_ACQUIRE_WITHOUT_RELEASE = "CONC002"
RULE_BLOCKING_UNDER_LOCK = "CONC003"
RULE_UNSYNCHRONIZED_SHARED_MUTATION = "CONC004"
RULE_HANDLE_IN_WORKER_PAYLOAD = "FORK001"
RULE_EFFECTFUL_WORKER_FN = "FORK002"
RULE_NONSPAWN_CONTEXT = "FORK003"
RULE_RENAME_WITHOUT_FSYNC = "ATOM001"
RULE_FSYNC_WITHOUT_FLUSH = "ATOM002"
RULE_TAINTED_EXCEPTION = "LEAK001"
RULE_TAINTED_LOG = "LEAK002"
RULE_TAINTED_JOURNAL = "LEAK003"
RULE_TAINTED_SHARED_STATE = "LEAK004"

#: Every rule the full analyzer can run, grouped by family.
RULE_FAMILIES: Dict[str, tuple] = {
    "SIM": (RULE_TRUE_ANSWER, RULE_SENSITIVE_READ, RULE_SENSITIVE_ESCAPE),
    "DET": (RULE_UNSEEDED_RNG, RULE_WALLCLOCK_READ,
            RULE_UNORDERED_ITERATION, RULE_UNORDERED_ACCUMULATION),
    "WAL": (RULE_RELEASE_BEFORE_APPEND, RULE_SWALLOWED_APPEND_FAILURE),
    "BUD": (RULE_UNCHECKPOINTED_LOOP,),
    "CONC": (RULE_UNGUARDED_GUARDED_STATE, RULE_ACQUIRE_WITHOUT_RELEASE,
             RULE_BLOCKING_UNDER_LOCK,
             RULE_UNSYNCHRONIZED_SHARED_MUTATION),
    "FORK": (RULE_HANDLE_IN_WORKER_PAYLOAD, RULE_EFFECTFUL_WORKER_FN,
             RULE_NONSPAWN_CONTEXT),
    "ATOM": (RULE_RENAME_WITHOUT_FSYNC, RULE_FSYNC_WITHOUT_FLUSH),
    "LEAK": (RULE_TAINTED_EXCEPTION, RULE_TAINTED_LOG,
             RULE_TAINTED_JOURNAL, RULE_TAINTED_SHARED_STATE),
}

ALL_RULES: tuple = tuple(rule for rules in RULE_FAMILIES.values()
                         for rule in rules)

RULE_SUMMARIES = {
    RULE_TRUE_ANSWER:
        "decision path evaluates the true answer of a query "
        "(true_answer / evaluate_aggregate)",
    RULE_SENSITIVE_READ:
        "decision path reads sensitive dataset values "
        "(values / element access / value-enumerating accessor)",
    RULE_SENSITIVE_ESCAPE:
        "decision path passes the sensitive dataset into a call the "
        "analyzer cannot follow",
    RULE_UNSEEDED_RNG:
        "decision/sampler path calls unseeded or global-state RNG "
        "(random.*, np.random.<fn>, default_rng() with no seed)",
    RULE_WALLCLOCK_READ:
        "decision/sampler path reads wall-clock time or OS entropy "
        "(time.time, os.urandom, uuid4, datetime.now)",
    RULE_UNORDERED_ITERATION:
        "decision/sampler path iterates a set/dict where order can reach "
        "released answers or RNG consumption order",
    RULE_UNORDERED_ACCUMULATION:
        "non-canonical float accumulation: sum() over an unordered "
        "collection on a replay-sensitive path",
    RULE_RELEASE_BEFORE_APPEND:
        "a code path releases an answer without a dominating audit-journal "
        "append (fail-closed ordering)",
    RULE_SWALLOWED_APPEND_FAILURE:
        "an exception handler swallows a journal-write failure and the "
        "function can still release an answer",
    RULE_UNCHECKPOINTED_LOOP:
        "a sampler/chain loop does work with no Budget checkpoint call "
        "in its body",
    RULE_UNGUARDED_GUARDED_STATE:
        "a lock-owning class mutates instance state outside a "
        "'with self._lock' region",
    RULE_ACQUIRE_WITHOUT_RELEASE:
        "an explicit lock.acquire() has no release() guaranteed on "
        "exception paths (use 'with lock:' or try/finally)",
    RULE_BLOCKING_UNDER_LOCK:
        "a blocking call (fsync, pool fan-out, sampler draw, sleep) runs "
        "while a lock is held",
    RULE_UNSYNCHRONIZED_SHARED_MUTATION:
        "thread-shared state (escape analysis) is mutated with no lock "
        "held: a shared-class attribute or a worker-context module global",
    RULE_HANDLE_IN_WORKER_PAYLOAD:
        "a live WAL/journal/file handle or np.random.Generator flows into "
        "a worker payload (Pool.map/submit/initargs/Thread args)",
    RULE_EFFECTFUL_WORKER_FN:
        "a worker function's effect summary appends to the journal or "
        "draws unseeded randomness (duplicated state across processes)",
    RULE_NONSPAWN_CONTEXT:
        "multiprocessing used without an explicit spawn context (fork "
        "duplicates locks, RNG state, and open handles)",
    RULE_RENAME_WITHOUT_FSYNC:
        "os.rename/os.replace of a durability artifact without a "
        "dominating file fsync and a post-dominating parent-dir fsync",
    RULE_FSYNC_WITHOUT_FLUSH:
        "os.fsync of a buffered handle not dominated by flush(): the "
        "kernel syncs a partial write",
    RULE_TAINTED_EXCEPTION:
        "a sensitive-tainted value (dataset cell, true answer, synopsis "
        "internals) reaches an exception message or denial-detail string",
    RULE_TAINTED_LOG:
        "a sensitive-tainted value reaches logging/print/CSV-export "
        "output outside the released-answer path",
    RULE_TAINTED_JOURNAL:
        "a sensitive-tainted value is serialized into a journal/WAL "
        "payload or replication frame beyond the released decision record",
    RULE_TAINTED_SHARED_STATE:
        "a sensitive-tainted value is stored on escape-marked "
        "thread-shared state",
}


def expand_rule_selection(tokens: Optional[List[str]]) -> Optional[set]:
    """Expand ``--select``/``--ignore`` tokens (families or rule IDs).

    ``None`` stays None (= everything); unknown tokens raise ValueError so
    typos fail loudly in CI.
    """
    if tokens is None:
        return None
    out: set = set()
    for token in tokens:
        token = token.strip().upper()
        if not token:
            continue
        if token in RULE_FAMILIES:
            out.update(RULE_FAMILIES[token])
        elif token in ALL_RULES:
            out.add(token)
        else:
            raise ValueError(f"unknown rule or family: {token!r} "
                             f"(families: {', '.join(RULE_FAMILIES)})")
    return out


@dataclass(frozen=True)
class Frame:
    """One hop of the call chain from entry point to sink."""

    function: str           #: qualified name, e.g. ``NaiveMaxAuditor._deny_reason``
    module: str             #: dotted module, e.g. ``repro.auditors.naive``
    file: str               #: path relative to the analysis root
    line: int               #: line of the call site (or def line for the entry)

    def to_dict(self) -> Dict[str, Any]:
        return {"function": self.function, "module": self.module,
                "file": self.file, "line": self.line}

    def __str__(self) -> str:
        return f"{self.function} ({self.file}:{self.line})"


@dataclass(frozen=True)
class Finding:
    """One rule hit reachable from an analysis entry point."""

    rule: str
    message: str
    file: str
    line: int
    col: int
    entry_class: str
    entry_method: str
    entry_module: str
    sink: str
    chain: tuple = ()                       # tuple[Frame, ...]
    pragma_reason: Optional[str] = None     # set => documented violation
    baselined: bool = False                 # set => suppressed by baseline

    @property
    def documented(self) -> bool:
        """Whether a violation pragma covers the path."""
        return self.pragma_reason is not None

    @property
    def severity(self) -> str:
        if self.documented:
            return "documented"
        if self.baselined:
            return "baselined"
        return "violation"

    @property
    def fingerprint(self) -> str:
        """Line-insensitive identity used by baselines and SARIF.

        Deliberately excludes the line/column so a baseline survives
        unrelated edits above the finding.  The sink text is
        whitespace-normalised so a sink expression that gets reflowed
        across source lines (a multi-line f-string, a wrapped call)
        keeps the same fingerprint.
        """
        key = "|".join((self.rule, self.file, self.entry_class,
                        self.entry_method, " ".join(self.sink.split())))
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]

    @property
    def suppress_hint(self) -> str:
        """The pragma that would document this finding."""
        return f"# audit: {self.rule} -- <why this is intentional>"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "entry": {"class": self.entry_class,
                      "method": self.entry_method,
                      "module": self.entry_module},
            "sink": self.sink,
            "chain": [frame.to_dict() for frame in self.chain],
            "pragma": self.pragma_reason,
            "fingerprint": self.fingerprint,
        }

    def format_text(self) -> str:
        """Multi-line human-readable rendering (file:line first)."""
        head = (f"{self.file}:{self.line}:{self.col}: {self.rule} "
                f"[{self.severity}] {self.message}")
        lines = [head,
                 f"    entry: {self.entry_module}."
                 f"{self.entry_class}.{self.entry_method}"
                 if self.entry_class else
                 f"    entry: {self.entry_module}.{self.entry_method}"]
        for depth, frame in enumerate(self.chain):
            lines.append(f"    {'  ' * depth}-> {frame}")
        lines.append(f"    sink: {self.sink}")
        if self.pragma_reason is not None:
            lines.append(f"    pragma: {self.pragma_reason}")
        elif not self.baselined:
            lines.append(f"    suppress: {self.suppress_hint}")
        return "\n".join(lines)


@dataclass
class Report:
    """Everything one analysis run produced."""

    package: str
    root: str
    findings: List[Finding] = field(default_factory=list)
    entry_points: int = 0
    classes_checked: int = 0
    modules_scanned: int = 0
    functions_scanned: int = 0
    #: rule IDs this run actually evaluated (empty = legacy SIM-only run)
    rules: List[str] = field(default_factory=list)

    @property
    def violations(self) -> List[Finding]:
        """Undocumented, un-baselined findings — these fail the gate."""
        return [f for f in self.findings
                if not f.documented and not f.baselined]

    @property
    def documented(self) -> List[Finding]:
        """Findings covered by a violation pragma."""
        return [f for f in self.findings if f.documented]

    @property
    def baselined(self) -> List[Finding]:
        """Findings suppressed by the ``--baseline`` file."""
        return [f for f in self.findings
                if f.baselined and not f.documented]

    @property
    def ok(self) -> bool:
        """True when no undocumented violation remains."""
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        ordered = sorted(self.findings,
                         key=lambda f: (f.file, f.line, f.col, f.rule))
        return {
            "schema_version": SCHEMA_VERSION,
            "package": self.package,
            "root": self.root,
            "rules": sorted(self.rules),
            "counts": {
                "findings": len(self.findings),
                "violations": len(self.violations),
                "documented": len(self.documented),
                "baselined": len(self.baselined),
                "entry_points": self.entry_points,
                "classes_checked": self.classes_checked,
                "modules_scanned": self.modules_scanned,
                "functions_scanned": self.functions_scanned,
            },
            "findings": [f.to_dict() for f in ordered],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def format_text(self) -> str:
        """The ``repro-audit lint --format text`` rendering."""
        lines: List[str] = []
        ordered = sorted(self.findings,
                         key=lambda f: (f.file, f.line, f.col, f.rule))
        for finding in ordered:
            lines.append(finding.format_text())
            lines.append("")
        lines.append(
            f"simulatability: {self.classes_checked} auditor class(es), "
            f"{self.entry_points} decision entry point(s), "
            f"{self.modules_scanned} module(s) scanned"
        )
        if self.rules:
            families = sorted({rule.rstrip("0123456789")
                               for rule in self.rules})
            lines.append(
                f"analysis: {len(self.rules)} rule(s) active "
                f"({'/'.join(families)}), "
                f"{self.functions_scanned} function(s) scanned"
            )
        if not self.findings:
            lines.append("no sensitive reads reachable from decision paths")
        else:
            summary = (f"{len(self.violations)} violation(s), "
                       f"{len(self.documented)} documented violation(s)")
            if self.baselined:
                summary += f", {len(self.baselined)} baselined"
            lines.append(summary)
        return "\n".join(lines)
