"""Finding and report types for the simulatability analyzer.

A *finding* is one reachable read of a sensitive source from a decision
entry point, together with the call chain that reaches it.  Findings are
plain data so they serialise to a stable JSON schema (``SCHEMA_VERSION``)
that the CLI, the pytest gate, and CI all consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Bumped only when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Rule identifiers, stable across releases.
RULE_TRUE_ANSWER = "SIM001"
RULE_SENSITIVE_READ = "SIM002"
RULE_SENSITIVE_ESCAPE = "SIM003"

RULE_SUMMARIES = {
    RULE_TRUE_ANSWER:
        "decision path evaluates the true answer of a query "
        "(true_answer / evaluate_aggregate)",
    RULE_SENSITIVE_READ:
        "decision path reads sensitive dataset values "
        "(values / element access / value-enumerating accessor)",
    RULE_SENSITIVE_ESCAPE:
        "decision path passes the sensitive dataset into a call the "
        "analyzer cannot follow",
}


@dataclass(frozen=True)
class Frame:
    """One hop of the call chain from entry point to sink."""

    function: str           #: qualified name, e.g. ``NaiveMaxAuditor._deny_reason``
    module: str             #: dotted module, e.g. ``repro.auditors.naive``
    file: str               #: path relative to the analysis root
    line: int               #: line of the call site (or def line for the entry)

    def to_dict(self) -> Dict[str, Any]:
        return {"function": self.function, "module": self.module,
                "file": self.file, "line": self.line}

    def __str__(self) -> str:
        return f"{self.function} ({self.file}:{self.line})"


@dataclass(frozen=True)
class Finding:
    """One sensitive-source read reachable from a decision entry point."""

    rule: str
    message: str
    file: str
    line: int
    col: int
    entry_class: str
    entry_method: str
    entry_module: str
    sink: str
    chain: tuple = ()                       # tuple[Frame, ...]
    pragma_reason: Optional[str] = None     # set => documented violation

    @property
    def documented(self) -> bool:
        """Whether a ``# simulatability: violation`` pragma covers the path."""
        return self.pragma_reason is not None

    @property
    def severity(self) -> str:
        return "documented" if self.documented else "violation"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "entry": {"class": self.entry_class,
                      "method": self.entry_method,
                      "module": self.entry_module},
            "sink": self.sink,
            "chain": [frame.to_dict() for frame in self.chain],
            "pragma": self.pragma_reason,
        }

    def format_text(self) -> str:
        """Multi-line human-readable rendering (file:line first)."""
        head = (f"{self.file}:{self.line}:{self.col}: {self.rule} "
                f"[{self.severity}] {self.message}")
        lines = [head,
                 f"    entry: {self.entry_module}."
                 f"{self.entry_class}.{self.entry_method}"]
        for depth, frame in enumerate(self.chain):
            lines.append(f"    {'  ' * depth}-> {frame}")
        lines.append(f"    sink: {self.sink}")
        if self.pragma_reason is not None:
            lines.append(f"    pragma: {self.pragma_reason}")
        return "\n".join(lines)


@dataclass
class Report:
    """Everything one :func:`check_package` run produced."""

    package: str
    root: str
    findings: List[Finding] = field(default_factory=list)
    entry_points: int = 0
    classes_checked: int = 0
    modules_scanned: int = 0

    @property
    def violations(self) -> List[Finding]:
        """Undocumented findings — these fail the gate."""
        return [f for f in self.findings if not f.documented]

    @property
    def documented(self) -> List[Finding]:
        """Findings covered by a violation pragma."""
        return [f for f in self.findings if f.documented]

    @property
    def ok(self) -> bool:
        """True when no undocumented violation remains."""
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        ordered = sorted(self.findings,
                         key=lambda f: (f.file, f.line, f.col, f.rule))
        return {
            "schema_version": SCHEMA_VERSION,
            "package": self.package,
            "root": self.root,
            "counts": {
                "findings": len(self.findings),
                "violations": len(self.violations),
                "documented": len(self.documented),
                "entry_points": self.entry_points,
                "classes_checked": self.classes_checked,
                "modules_scanned": self.modules_scanned,
            },
            "findings": [f.to_dict() for f in ordered],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def format_text(self) -> str:
        """The ``repro-audit lint --format text`` rendering."""
        lines: List[str] = []
        ordered = sorted(self.findings,
                         key=lambda f: (f.file, f.line, f.col, f.rule))
        for finding in ordered:
            lines.append(finding.format_text())
            lines.append("")
        lines.append(
            f"simulatability: {self.classes_checked} auditor class(es), "
            f"{self.entry_points} decision entry point(s), "
            f"{self.modules_scanned} module(s) scanned"
        )
        if not self.findings:
            lines.append("no sensitive reads reachable from decision paths")
        else:
            lines.append(
                f"{len(self.violations)} violation(s), "
                f"{len(self.documented)} documented violation(s)"
            )
        return "\n".join(lines)
