"""Per-function control-flow graphs for the flow-sensitive analyzers.

The SIM taint walker started out purely syntactic: it scanned every
expression of a function body in AST order.  The DET/WAL/BUD rule families
need more — *ordered statement effects* ("is every release dominated by a
journal append?"), *branch joins* ("is this local still a ``set`` on both
arms?"), and *loop bodies* ("does this chain loop checkpoint its budget?").
This module provides the shared machinery:

* :func:`build_cfg` — a statement-level CFG for one function: every simple
  statement is a node; compound statements contribute a *header* node (the
  ``if``/``while`` test, the ``for`` iterable, the ``with`` items) and their
  bodies are wired through it.  ``break``/``continue``/``return``/``raise``
  edges are modelled, and every statement inside a ``try`` body gets an edge
  to each handler *from its predecessors* — an exception may fire before the
  statement's own effect happened, and the must-analysis below relies on
  that pessimism.
* :func:`must_pass_before` — classic forward *must* dataflow: did some
  effect statement execute on **every** path from the entry to a target?
  This is how WAL001 proves (or refutes) that a journal append dominates a
  release.
* :func:`flow_locals` — a small forward abstract-interpretation driver with
  pluggable transfer/join, used for flow-sensitive local typing (branch
  joins keep a binding only when both arms agree) by the SIM and DET
  walkers.

Everything is best-effort and deliberately simple: the graphs are
intraprocedural, ``finally`` interception of ``return`` is approximated
(returns jump straight to the exit), and unreachable statements simply keep
the entry state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .modindex import FunctionNode

#: ``ast.Match`` only exists on py3.10+; the analyzer still runs on 3.9.
_MATCH = getattr(ast, "Match", None)


@dataclass
class StmtNode:
    """One CFG node: a simple statement, a compound header, or a handler."""

    sid: int
    node: Optional[ast.AST]            #: underlying statement (None: entry/exit)
    exprs: Tuple[ast.expr, ...] = ()   #: expressions evaluated *at* this node
    is_header: bool = False            #: compound-statement header
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)


class CFG:
    """Statement-level control-flow graph of one function body."""

    def __init__(self, fn: FunctionNode) -> None:
        self.fn = fn
        self.nodes: Dict[int, StmtNode] = {}
        self.entry = self._new(None).sid
        self.exit = self._new(None).sid
        self.returns: List[int] = []     #: sids of Return statements
        self.loops: List[int] = []       #: sids of For/While headers

    def _new(self, node: Optional[ast.AST], exprs: Tuple[ast.expr, ...] = (),
             is_header: bool = False) -> StmtNode:
        sid = len(self.nodes)
        item = StmtNode(sid=sid, node=node, exprs=exprs, is_header=is_header)
        self.nodes[sid] = item
        return item

    def link(self, preds: Sequence[int], to: int) -> None:
        for sid in preds:
            if to not in self.nodes[sid].succs:
                self.nodes[sid].succs.append(to)
            if sid not in self.nodes[to].preds:
                self.nodes[to].preds.append(sid)

    def statements(self) -> List[StmtNode]:
        """All real statement nodes, in creation (≈ source) order."""
        return [n for n in self.nodes.values()
                if n.node is not None]


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------

def _simple_exprs(stmt: ast.stmt) -> Tuple[ast.expr, ...]:
    """The top-level expressions a simple statement evaluates."""
    out: List[ast.expr] = []
    for fld, value in ast.iter_fields(stmt):
        if fld in ("annotation",):      # annotations are not decision effects
            continue
        if isinstance(value, ast.expr):
            out.append(value)
        elif isinstance(value, list):
            out.extend(v for v in value if isinstance(v, ast.expr))
    return tuple(out)


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        #: stack of (loop_header_sid, break_collector)
        self.loop_stack: List[Tuple[int, List[int]]] = []
        #: stack of handler-entry sid lists for enclosing ``try`` bodies
        self.handler_stack: List[List[int]] = []

    # -- helpers --------------------------------------------------------

    def _raise_targets(self) -> List[int]:
        """Where an in-flight exception can land (innermost handlers)."""
        return self.handler_stack[-1] if self.handler_stack else []

    # -- statement sequences -------------------------------------------

    def seq(self, stmts: Sequence[ast.stmt], preds: List[int]) -> List[int]:
        """Wire ``stmts`` after ``preds``; returns the fall-through exits."""
        current = list(preds)
        for stmt in stmts:
            if not current:
                # Unreachable code still gets nodes (the walkers scan it
                # with the entry state) but contributes no flow edges.
                current = []
            current = self.one(stmt, current)
        return current

    def one(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            header = cfg._new(stmt, (stmt.test,), is_header=True)
            cfg.link(preds, header.sid)
            then_exits = self.seq(stmt.body, [header.sid])
            if stmt.orelse:
                else_exits = self.seq(stmt.orelse, [header.sid])
            else:
                else_exits = [header.sid]
            return then_exits + else_exits
        if isinstance(stmt, ast.While):
            header = cfg._new(stmt, (stmt.test,), is_header=True)
            cfg.loops.append(header.sid)
            cfg.link(preds, header.sid)
            breaks: List[int] = []
            self.loop_stack.append((header.sid, breaks))
            body_exits = self.seq(stmt.body, [header.sid])
            self.loop_stack.pop()
            cfg.link(body_exits, header.sid)
            exits = breaks
            is_forever = (isinstance(stmt.test, ast.Constant)
                          and bool(stmt.test.value))
            if not is_forever:
                exits = exits + [header.sid]
            if stmt.orelse:
                exits = self.seq(stmt.orelse, exits) if exits else []
            return exits
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            header = cfg._new(stmt, (stmt.iter,), is_header=True)
            cfg.loops.append(header.sid)
            cfg.link(preds, header.sid)
            breaks = []
            self.loop_stack.append((header.sid, breaks))
            body_exits = self.seq(stmt.body, [header.sid])
            self.loop_stack.pop()
            cfg.link(body_exits, header.sid)
            exits = breaks + [header.sid]
            if stmt.orelse:
                exits = self.seq(stmt.orelse, exits)
            return exits
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            header = cfg._new(
                stmt, tuple(item.context_expr for item in stmt.items),
                is_header=True)
            cfg.link(preds, header.sid)
            return self.seq(stmt.body, [header.sid])
        if isinstance(stmt, ast.Try) or stmt.__class__.__name__ == "TryStar":
            return self._try(stmt, preds)
        if _MATCH is not None and isinstance(stmt, _MATCH):
            header = cfg._new(stmt, (stmt.subject,), is_header=True)
            cfg.link(preds, header.sid)
            exits: List[int] = [header.sid]  # no case may match
            for case in stmt.cases:
                exits += self.seq(case.body, [header.sid])
            return exits
        if isinstance(stmt, ast.Return):
            node = cfg._new(stmt, (stmt.value,) if stmt.value else ())
            cfg.link(preds, node.sid)
            cfg.link([node.sid], cfg.exit)
            cfg.returns.append(node.sid)
            return []
        if isinstance(stmt, ast.Raise):
            node = cfg._new(stmt, _simple_exprs(stmt))
            cfg.link(preds, node.sid)
            targets = self._raise_targets()
            if targets:
                cfg.link([node.sid], targets[0])
                for extra in targets[1:]:
                    cfg.link([node.sid], extra)
            else:
                cfg.link([node.sid], cfg.exit)
            return []
        if isinstance(stmt, ast.Break):
            node = cfg._new(stmt)
            cfg.link(preds, node.sid)
            if self.loop_stack:
                self.loop_stack[-1][1].append(node.sid)
            return []
        if isinstance(stmt, ast.Continue):
            node = cfg._new(stmt)
            cfg.link(preds, node.sid)
            if self.loop_stack:
                cfg.link([node.sid], self.loop_stack[-1][0])
            return []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Nested definitions are separate scopes: a node with no
            # evaluated expressions (decorators excepted — rare enough).
            node = cfg._new(stmt)
            cfg.link(preds, node.sid)
            return [node.sid]
        node = cfg._new(stmt, _simple_exprs(stmt))
        cfg.link(preds, node.sid)
        return [node.sid]

    def _try(self, stmt: ast.Try, preds: List[int]) -> List[int]:
        cfg = self.cfg
        handler_entries: List[int] = []
        handler_nodes = []
        for handler in stmt.handlers:
            exprs = (handler.type,) if handler.type is not None else ()
            node = cfg._new(handler, exprs, is_header=True)
            handler_entries.append(node.sid)
            handler_nodes.append((handler, node))
        # An exception can fire before any body statement's own effect:
        # the handlers' predecessors include the try's own predecessors.
        for sid in handler_entries:
            cfg.link(preds, sid)
        self.handler_stack.append(handler_entries)
        body_exits = self.seq(stmt.body, list(preds))
        self.handler_stack.pop()
        # ... and at any point inside the body.
        body_sids = [n.sid for n in cfg.nodes.values()
                     if n.node is not None and self._inside(stmt.body, n.node)]
        for sid in handler_entries:
            cfg.link(body_sids, sid)
        if stmt.orelse:
            body_exits = self.seq(stmt.orelse, body_exits)
        handler_exits: List[int] = []
        for handler, node in handler_nodes:
            handler_exits += self.seq(handler.body, [node.sid])
        exits = body_exits + handler_exits
        if stmt.finalbody:
            exits = self.seq(stmt.finalbody, exits)
        return exits

    @staticmethod
    def _inside(body: Sequence[ast.stmt], node: ast.AST) -> bool:
        for stmt in body:
            if node is stmt:
                return True
            for child in ast.walk(stmt):
                if child is node:
                    return True
        return False


def build_cfg(fn: FunctionNode) -> CFG:
    """The statement-level CFG of ``fn``'s body."""
    cfg = CFG(fn)
    builder = _Builder(cfg)
    exits = builder.seq(fn.body, [cfg.entry])
    cfg.link(exits, cfg.exit)
    return cfg


# ----------------------------------------------------------------------
# Dataflow
# ----------------------------------------------------------------------

def must_pass_before(cfg: CFG, effects: Set[int], target: int) -> bool:
    """True when every entry→``target`` path runs an ``effects`` statement
    strictly before reaching ``target``.

    Classic forward must-analysis: ``IN[n] = AND over preds of OUT[p]``,
    ``OUT[n] = IN[n] or (n in effects)``; unreachable nodes keep ⊤ and are
    reported as dominated (nothing can release along them).
    """
    IN: Dict[int, bool] = {sid: True for sid in cfg.nodes}
    IN[cfg.entry] = False
    changed = True
    while changed:
        changed = False
        for sid, node in cfg.nodes.items():
            if sid == cfg.entry:
                continue
            if node.preds:
                new = all(IN[p] or p in effects for p in node.preds)
            else:
                new = True  # unreachable
            if new != IN[sid]:
                IN[sid] = new
                changed = True
    return IN[target]


def must_pass_after(cfg: CFG, effects: Set[int], target: int) -> bool:
    """True when every ``target``→exit path runs an ``effects`` statement
    strictly after leaving ``target``.

    The reverse of :func:`must_pass_before`: a backward must-analysis over
    the same graph.  ``B[n]`` means "every path from *n* to the exit hits
    an effect at *n* or later"; the answer is the conjunction over the
    target's successors.  ATOM001 uses this to prove a directory fsync
    post-dominates an ``os.replace``.  A target with no successors (a
    dead-end node) has no path to the exit, so nothing can escape along
    it and it is reported as covered.
    """
    B: Dict[int, bool] = {sid: True for sid in cfg.nodes}
    B[cfg.exit] = cfg.exit in effects
    changed = True
    while changed:
        changed = False
        for sid, node in cfg.nodes.items():
            if sid == cfg.exit:
                continue
            if sid in effects:
                new = True
            elif node.succs:
                new = all(B[s] for s in node.succs)
            else:
                new = True  # dead end: no path reaches the exit
            if new != B[sid]:
                B[sid] = new
                changed = True
    succs = cfg.nodes[target].succs
    if not succs:
        return True
    return all(B[s] for s in succs)


State = Dict[str, object]
Transfer = Callable[[StmtNode, State], State]


def _join(a: State, b: State) -> State:
    """Keep a binding only when both branches agree on it."""
    if not a or not b:
        return {}
    return {k: v for k, v in a.items() if k in b and b[k] == v}


def flow_locals(cfg: CFG, initial: State, transfer: Transfer,
                max_rounds: int = 16) -> Dict[int, State]:
    """Forward abstract interpretation; returns the state *before* each sid.

    ``transfer(stmt, state)`` returns the state after one statement (it may
    mutate and return its argument).  Joins intersect agreeing bindings, so
    a local keeps its type/kind across a branch only when both arms concur —
    the flow-sensitive behaviour the DET rules need.  Unreachable statements
    see the initial (parameter-only) state.
    """
    before: Dict[int, State] = {cfg.entry: dict(initial)}
    after: Dict[int, State] = {}
    order = sorted(cfg.nodes)
    for _ in range(max_rounds):
        changed = False
        for sid in order:
            node = cfg.nodes[sid]
            if sid == cfg.entry:
                state = dict(initial)
            else:
                pred_states = [after[p] for p in node.preds if p in after]
                if pred_states:
                    state = dict(pred_states[0])
                    for other in pred_states[1:]:
                        state = _join(state, other)
                else:
                    state = dict(initial)
            if before.get(sid) != state:
                before[sid] = dict(state)
                changed = True
            out = transfer(node, dict(state)) if node.node is not None \
                else dict(state)
            if after.get(sid) != out:
                after[sid] = out
                changed = True
        if not changed:
            break
    return before


def stmt_expr_nodes(stmt: StmtNode,
                    kinds: Optional[Tuple[type, ...]] = None) -> List[ast.AST]:
    """All expression-level AST nodes evaluated at one CFG node.

    Walks each of the node's header/top-level expressions, *excluding*
    nested function/class definitions (separate scopes).
    """
    out: List[ast.AST] = []

    def visit(current: ast.AST) -> None:
        if kinds is None or isinstance(current, kinds):
            out.append(current)
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            visit(child)

    for expr in stmt.exprs:
        if expr is not None:
            visit(expr)
    return out
