"""DET rules: bitwise determinism of decision and sampler paths.

The serving layer's replay story (golden decision suites, WAL replay,
vectorized-vs-reference differential tests) only holds if every value that
can reach a released answer is a pure function of the seed and the query
history.  These rules statically flag the classic ways that breaks, for
all code reachable from the auditor decision entry points, the sampler hot
paths (``*Sampler`` / ``*Chain`` classes), and the CLI/parallel seeding
helpers:

* ``DET001`` — unseeded or global-state RNG: ``random.*`` /
  ``numpy.random.<fn>`` module-level calls, ``default_rng()`` /
  ``as_generator()`` with no seed argument;
* ``DET002`` — wall-clock or entropy reads (``time.time``, ``os.urandom``,
  ``uuid4``, ``datetime.now``); ``time.monotonic`` is allowed — it is the
  budget deadline clock and never feeds a released value;
* ``DET003`` — iteration over a ``set``/``dict`` whose order can reach
  released answers or RNG consumption order (loop bodies that draw, return,
  or accumulate; order-sensitive builtins like ``list()`` over a set);
  iterating into an order-insensitive consumer (``sorted``, ``set``,
  ``min``/``max``, ``any``/``all``) is fine;
* ``DET004`` — non-canonical float accumulation: ``sum()`` over an
  unordered collection (``math.fsum`` or ``sum(sorted(...))`` are the
  canonical spellings).

Container kinds are tracked flow-sensitively over the per-function CFG, so
``xs = sorted(s)`` launders a set into an ordered list while a rebind back
to a set re-arms the rule on that path only.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import Resolver, TypeEnv
from .cfg import CFG, StmtNode, build_cfg, flow_locals, stmt_expr_nodes
from .findings import (
    RULE_UNORDERED_ACCUMULATION,
    RULE_UNORDERED_ITERATION,
    RULE_UNSEEDED_RNG,
    RULE_WALLCLOCK_READ,
    Finding,
    Frame,
)
from .modindex import ClassInfo, FunctionNode, PackageIndex
from .purity import EffectEngine
from .simulatability import (
    AnalysisConfig,
    _is_abstract_stub,
    find_auditor_classes,
)

#: builtins that consume an iterable without exposing its order
_ORDER_INSENSITIVE = frozenset({
    "sorted", "set", "frozenset", "min", "max", "any", "all", "len",
})

#: builtins that materialise/expose iteration order
_ORDER_SENSITIVE = frozenset({"list", "tuple", "enumerate", "iter",
                              "reversed"})

_SET_ANNOTATIONS = ("FrozenSet", "Set", "AbstractSet", "MutableSet",
                    "frozenset", "set", "typing.FrozenSet", "typing.Set")
_DICT_ANNOTATIONS = ("Dict", "dict", "Mapping", "MutableMapping",
                     "DefaultDict", "defaultdict", "Counter",
                     "typing.Dict", "typing.Mapping")


@dataclass
class DeterminismConfig:
    """Scope of the DET reachability walk."""

    #: class-name patterns whose methods are sampler hot paths
    sampler_class_patterns: Tuple[str, ...] = (r".*(Sampler|Chain)$",)
    #: modules whose top-level functions are walked as roots
    root_modules: Tuple[str, ...] = (
        "repro.cli",
        "repro.utility.parallel",
        "repro.audit_empirical.cli",
        "repro.audit_empirical.estimator",
        "repro.audit_empirical.harness",
    )
    max_depth: int = 25


DEFAULT_DET_CONFIG = DeterminismConfig()


def annotation_kind(text: Optional[str]) -> Optional[str]:
    """``"set"``/``"dict"`` when an annotation names an unordered type."""
    if not text:
        return None
    text = text.strip().strip("\"'")
    if text.startswith("Optional[") and text.endswith("]"):
        text = text[len("Optional["):-1].strip()
    head = text.split("[", 1)[0].strip()
    if head in _SET_ANNOTATIONS:
        return "set"
    if head in _DICT_ANNOTATIONS:
        return "dict"
    return None


@dataclass
class _Root:
    module: str
    node: FunctionNode
    self_class: Optional[ClassInfo]
    entry_class: str
    entry_method: str


def _collect_roots(index: PackageIndex, resolver: Resolver,
                   sim_config: AnalysisConfig,
                   config: DeterminismConfig) -> List[_Root]:
    roots: List[_Root] = []
    seen: Set[Tuple[int, str]] = set()

    def add(module: str, node: FunctionNode,
            self_class: Optional[ClassInfo], entry_class: str,
            entry_method: str) -> None:
        key = (id(node), entry_class)
        if key in seen or _is_abstract_stub(node):
            return
        seen.add(key)
        roots.append(_Root(module, node, self_class, entry_class,
                           entry_method))

    for cls in find_auditor_classes(index, resolver, sim_config):
        for entry_name in sim_config.entry_methods:
            hit = resolver.find_method(cls, entry_name)
            if hit is not None:
                defining, node = hit
                add(defining.module, node, cls, cls.name, entry_name)

    patterns = [re.compile(p) for p in config.sampler_class_patterns]
    for cls in sorted(index.classes.values(), key=lambda c: c.qualname):
        if not any(p.match(cls.name) for p in patterns):
            continue
        for name, node in sorted(cls.methods.items()):
            if name.startswith("__") and name != "__init__":
                continue
            add(cls.module, node, cls, cls.name, name)

    for mod_name in config.root_modules:
        mod = index.modules.get(mod_name)
        if mod is None:
            continue
        for name, node in sorted(mod.functions.items()):
            add(mod_name, node, None, "", name)
    return roots


class _DetWalker:
    """Reachability walk + per-function DET scans."""

    def __init__(self, index: PackageIndex, resolver: Resolver,
                 engine: EffectEngine, config: DeterminismConfig) -> None:
        self.index = index
        self.resolver = resolver
        self.engine = engine
        self.config = config
        self.findings: List[Finding] = []
        self.functions_walked = 0
        self._visited: Set[Tuple[int, Optional[str]]] = set()
        self._emitted: Set[Tuple] = set()
        self._cfg_cache: Dict[int, CFG] = {}

    # -- walking --------------------------------------------------------

    def walk_root(self, root: _Root) -> None:
        key = (id(root.node),
               root.self_class.qualname if root.self_class else None)
        if key in self._visited:
            return
        entry_frame = Frame(
            function=(f"{root.entry_class}.{root.entry_method}"
                      if root.entry_class else root.entry_method),
            module=root.module,
            file=self.index.relpath(root.module),
            line=root.node.lineno,
        )
        self._visited.add(key)
        self._walk(root.module, root.node, root.self_class, root,
                   chain=(entry_frame,), depth=0)

    def _walk(self, module: str, node: FunctionNode,
              self_class: Optional[ClassInfo], root: _Root,
              chain: Tuple[Frame, ...], depth: int) -> None:
        self.functions_walked += 1
        env = self.resolver.param_env(module, node, self_class=self_class)
        self._infer_assign_types(node, env)
        graph = self._cfg(node)
        states = self._flow_kinds(graph, module, node, env)
        for stmt in graph.statements():
            state = states.get(stmt.sid, {})
            self._scan_stmt(stmt, state, module, env, root, chain)
            for call in stmt_expr_nodes(stmt, (ast.Call,)):
                self._recurse(call, module, env, root, chain, depth)

    def _recurse(self, call: ast.Call, module: str, env: TypeEnv,
                 root: _Root, chain: Tuple[Frame, ...], depth: int) -> None:
        if depth >= self.config.max_depth:
            return
        resolved = self.resolver.resolve_call(call.func, env)
        if resolved is None or resolved.node is None \
                or resolved.module is None:
            return
        dispatch = resolved.self_class
        key = (id(resolved.node),
               dispatch.qualname if dispatch is not None else None)
        if key in self._visited:
            return
        self._visited.add(key)
        frame = Frame(function=resolved.qualname, module=module,
                      file=self.index.relpath(module), line=call.lineno)
        self._walk(resolved.module, resolved.node, dispatch, root,
                   chain + (frame,), depth + 1)

    # -- container-kind flow -------------------------------------------

    def _cfg(self, node: FunctionNode) -> CFG:
        cached = self._cfg_cache.get(id(node))
        if cached is None:
            cached = build_cfg(node)
            self._cfg_cache[id(node)] = cached
        return cached

    def _infer_assign_types(self, node: FunctionNode, env: TypeEnv) -> None:
        """Flow-insensitive receiver typing (for call resolution only)."""
        assigns = [stmt for stmt in ast.walk(node)
                   if isinstance(stmt, ast.Assign)]
        assigns.sort(key=lambda stmt: stmt.lineno)
        for stmt in assigns:
            if len(stmt.targets) != 1 or not isinstance(stmt.targets[0],
                                                        ast.Name):
                continue
            inferred = self.resolver.infer_type(stmt.value, env)
            if inferred is not None:
                env.locals[stmt.targets[0].id] = inferred

    def _param_kinds(self, module: str, node: FunctionNode) -> Dict[str, str]:
        kinds: Dict[str, str] = {}
        args = node.args
        for param in (list(args.posonlyargs) + list(args.args)
                      + list(args.kwonlyargs)):
            if param.annotation is None:
                continue
            try:
                text = ast.unparse(param.annotation)
            except Exception:  # pragma: no cover
                continue
            kind = annotation_kind(text)
            if kind is not None:
                kinds[param.arg] = kind
        return kinds

    def classify(self, expr: Optional[ast.expr], state: Dict[str, object],
                 env: TypeEnv) -> Optional[str]:
        """``"set"``/``"dict"`` when ``expr`` is statically unordered."""
        if expr is None:
            return None
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(expr, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(expr, ast.Name):
            kind = state.get(expr.id)
            return kind if isinstance(kind, str) else None
        if isinstance(expr, ast.IfExp):
            body = self.classify(expr.body, state, env)
            orelse = self.classify(expr.orelse, state, env)
            return body if body == orelse else None
        if isinstance(expr, ast.Attribute):
            receiver = self.resolver.infer_type(expr.value, env)
            if receiver is not None:
                for cls in self.resolver.mro(receiver):
                    text = cls.attr_types.get(expr.attr)
                    if text is not None:
                        return annotation_kind(text)
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return "set"
                if func.id == "dict":
                    return "dict"
                if func.id in ("sorted", "list", "tuple"):
                    return None
            if isinstance(func, ast.Attribute):
                if func.attr in ("keys", "values", "items"):
                    base = self.classify(func.value, state, env)
                    return "dict" if base == "dict" else None
                if func.attr in ("union", "intersection", "difference",
                                 "symmetric_difference", "copy"):
                    base = self.classify(func.value, state, env)
                    if base is not None:
                        return base
            resolved = self.resolver.resolve_call(func, env)
            if resolved is not None and resolved.node is not None:
                returns = resolved.node.returns
                if returns is not None:
                    try:
                        return annotation_kind(ast.unparse(returns))
                    except Exception:  # pragma: no cover
                        return None
            return None
        return None

    def _flow_kinds(self, graph: CFG, module: str, node: FunctionNode,
                    env: TypeEnv) -> Dict[int, Dict[str, object]]:
        init: Dict[str, object] = dict(self._param_kinds(module, node))

        def transfer(stmt: StmtNode,
                     state: Dict[str, object]) -> Dict[str, object]:
            inner = stmt.node
            if (isinstance(inner, ast.Assign) and len(inner.targets) == 1
                    and isinstance(inner.targets[0], ast.Name)):
                kind = self.classify(inner.value, state, env)
                if kind is not None:
                    state[inner.targets[0].id] = kind
                else:
                    state.pop(inner.targets[0].id, None)
            elif (isinstance(inner, ast.AnnAssign)
                    and isinstance(inner.target, ast.Name)):
                try:
                    text = ast.unparse(inner.annotation)
                except Exception:  # pragma: no cover
                    text = None
                kind = annotation_kind(text) or self.classify(
                    inner.value, state, env)
                if kind is not None:
                    state[inner.target.id] = kind
                else:
                    state.pop(inner.target.id, None)
            elif isinstance(inner, (ast.For, ast.AsyncFor)) and stmt.is_header:
                for name_node in ast.walk(inner.target):
                    if isinstance(name_node, ast.Name):
                        state.pop(name_node.id, None)
            return state

        return flow_locals(graph, init, transfer)

    # -- per-statement rule scans --------------------------------------

    def _scan_stmt(self, stmt: StmtNode, state: Dict[str, object],
                   module: str, env: TypeEnv, root: _Root,
                   chain: Tuple[Frame, ...]) -> None:
        calls = stmt_expr_nodes(stmt, (ast.Call,))
        exempt_comps: Set[int] = set()

        for call in calls:
            facts = self.engine.call_facts(call, module, env)
            if facts.unseeded_rng is not None:
                self._emit(RULE_UNSEEDED_RNG, module, call,
                           sink=f"call to {facts.unseeded_rng}",
                           message="unseeded/global RNG breaks bitwise "
                                   f"replay: {facts.unseeded_rng}()",
                           root=root, chain=chain)
            if facts.clock is not None:
                self._emit(RULE_WALLCLOCK_READ, module, call,
                           sink=f"call to {facts.clock}",
                           message="wall-clock/entropy read on a "
                                   f"deterministic path: {facts.clock}()",
                           root=root, chain=chain)

            func = call.func
            if isinstance(func, ast.Name):
                comp_args = [a for a in call.args
                             if isinstance(a, (ast.ListComp,
                                               ast.GeneratorExp))]
                if func.id in _ORDER_INSENSITIVE or func.id == "sum":
                    for comp in comp_args:
                        exempt_comps.add(id(comp))
                if func.id == "sum" and call.args:
                    if self._sum_is_unordered(call.args[0], state, env):
                        self._emit(
                            RULE_UNORDERED_ACCUMULATION, module, call,
                            sink="sum() over unordered collection",
                            message="float accumulation order is not "
                                    "canonical: sum() over a set/dict "
                                    "(use sum(sorted(...)) or math.fsum)",
                            root=root, chain=chain)
                elif (func.id in _ORDER_SENSITIVE and len(call.args) == 1
                        and self.classify(call.args[0], state, env)
                        is not None):
                    self._emit(
                        RULE_UNORDERED_ITERATION, module, call,
                        sink=f"{func.id}(<set/dict>)",
                        message=f"{func.id}() materialises set/dict "
                                "iteration order on a deterministic path",
                        root=root, chain=chain)

        # for-loops over unordered iterables with order-relevant bodies
        inner = stmt.node
        if (isinstance(inner, (ast.For, ast.AsyncFor)) and stmt.is_header
                and self.classify(inner.iter, state, env) is not None
                and self._loop_body_is_order_relevant(inner, module, env)):
            self._emit(
                RULE_UNORDERED_ITERATION, module, inner,
                sink="for-loop over set/dict",
                message="loop over a set/dict feeds released answers or "
                        "RNG consumption order (iterate sorted(...) "
                        "instead)",
                root=root, chain=chain)

        # bare comprehensions over unordered iterables
        for comp in stmt_expr_nodes(stmt, (ast.ListComp, ast.GeneratorExp)):
            if id(comp) in exempt_comps:
                continue
            if any(self.classify(gen.iter, state, env) is not None
                   for gen in comp.generators):
                self._emit(
                    RULE_UNORDERED_ITERATION, module, comp,
                    sink="comprehension over set/dict",
                    message="comprehension materialises set/dict iteration "
                            "order on a deterministic path",
                    root=root, chain=chain)

    def _sum_is_unordered(self, arg: ast.expr, state: Dict[str, object],
                          env: TypeEnv) -> bool:
        if self.classify(arg, state, env) is not None:
            return True
        if isinstance(arg, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            # Counting idioms (`sum(1 for ... if ...)`) are exact integer
            # arithmetic: commutative, so iteration order cannot matter.
            if (isinstance(arg.elt, ast.Constant)
                    and isinstance(arg.elt.value, int)):
                return False
            return any(self.classify(gen.iter, state, env) is not None
                       for gen in arg.generators)
        return False

    def _loop_body_is_order_relevant(self, loop: ast.stmt, module: str,
                                     env: TypeEnv) -> bool:
        """Draws randomness, releases, or accumulates into a mutable."""
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                if isinstance(node, ast.Return):
                    # `return <constant>` is the any()/all() short-circuit
                    # idiom: the result is existence, not order.
                    if (node.value is not None
                            and not isinstance(node.value, ast.Constant)):
                        return True
                elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return True
                if isinstance(node, ast.AugAssign):
                    return True
                if isinstance(node, ast.Assign) and any(
                        isinstance(t, ast.Subscript) for t in node.targets):
                    return True
                if isinstance(node, ast.Call):
                    facts = self.engine.merged_facts(node, module, env)
                    if facts.draws:
                        return True
        return False

    # -- emission -------------------------------------------------------

    def _emit(self, rule: str, module: str, node: ast.AST, sink: str,
              message: str, root: _Root, chain: Tuple[Frame, ...]) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        key = (rule, module, line, col)
        if key in self._emitted:
            return
        self._emitted.add(key)
        pragma = self.index.pragma_for(module, rule, line)
        if pragma is None:
            for frame in chain:
                pragma = self.index.pragma_for(frame.module, rule,
                                               frame.line)
                if pragma is not None:
                    break
        self.findings.append(Finding(
            rule=rule,
            message=message,
            file=self.index.relpath(module),
            line=line,
            col=col,
            entry_class=root.entry_class,
            entry_method=root.entry_method,
            entry_module=root.module,
            sink=sink,
            chain=chain,
            pragma_reason=pragma,
        ))


def check_determinism(index: PackageIndex, resolver: Resolver,
                      engine: EffectEngine,
                      sim_config: Optional[AnalysisConfig] = None,
                      config: Optional[DeterminismConfig] = None,
                      ) -> Tuple[List[Finding], int, int]:
    """Run the DET rules; returns (findings, roots walked, functions)."""
    from .simulatability import DEFAULT_CONFIG
    sim_config = sim_config or DEFAULT_CONFIG
    config = config or DEFAULT_DET_CONFIG
    walker = _DetWalker(index, resolver, engine, config)
    roots = _collect_roots(index, resolver, sim_config, config)
    for root in roots:
        walker.walk_root(root)
    return walker.findings, len(roots), walker.functions_walked
