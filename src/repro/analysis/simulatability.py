"""The simulatability taint analyzer.

The paper's core safety property (§2.2, §4): an auditor's deny/answer
decision must be computable *without the true answer to the current query*,
otherwise the denials themselves leak (the ``NaiveMaxAuditor`` attack).
This module proves the property statically: for every :class:`Auditor`
subclass it walks the decision entry points (``_deny_reason``,
``would_answer``, ``_record_answer``) and their transitive intra-package
callees, and reports every reachable read of a **sensitive source**:

* ``SIM001`` — evaluating the true answer (``true_answer`` /
  ``evaluate_aggregate``);
* ``SIM002`` — reading sensitive dataset values (``Dataset.values``,
  element access, ``subset`` / ``as_array`` / sorted-value style
  accessors, iteration, value-enumerating builtins);
* ``SIM003`` — passing the sensitive dataset object into a call the
  analyzer cannot follow.

Decision paths *may* use the query structure, past answered values, and the
dataset's public envelope (``n`` / ``low`` / ``high`` / ``len``) — exactly
the allowlist encoded in :data:`DEFAULT_CONFIG`.

Intentional violations (the §2.2 straw men, documented chain-seeding
shortcuts) carry a ``# simulatability: violation -- <reason>`` pragma on or
directly above the offending line; they are reported as ``documented`` and
do not fail the gate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from .callgraph import ResolvedCall, Resolver, TypeEnv
from .cfg import CFG, StmtNode, build_cfg, flow_locals, stmt_expr_nodes
from .findings import (
    RULE_SENSITIVE_ESCAPE,
    RULE_SENSITIVE_READ,
    RULE_TRUE_ANSWER,
    Finding,
    Frame,
    Report,
)
from .modindex import ClassInfo, FunctionNode, PackageIndex, build_index

#: Builtins whose application to a dataset enumerates its values.
_ENUMERATING_BUILTINS = frozenset({
    "list", "tuple", "set", "sorted", "iter", "max", "min", "sum",
    "enumerate", "reversed", "frozenset", "any", "all",
})

#: Builtins that only touch the public envelope.
_PUBLIC_BUILTINS = frozenset({"len", "isinstance", "type", "repr", "id"})


@dataclass(frozen=True)
class SensitiveClass:
    """Public surface of a class whose instances hold sensitive values."""

    qualname: str
    public_attrs: FrozenSet[str] = frozenset({"n", "low", "high"})


@dataclass
class AnalysisConfig:
    """Sources, sinks, and entry points of one analysis run."""

    package: str = "repro"
    #: qualified name of the auditor base class
    base_class: str = "repro.auditors.base.Auditor"
    #: methods whose bodies (and transitive callees) form the decision path
    #: (``_deny_reason_sampled`` is the budgeted inner body the resilience
    #: guard dispatches to — registered explicitly so the deadline
    #: fallback's decision path stays covered even if the indirect call
    #: through ``run_fail_closed`` ever stops resolving)
    entry_methods: Tuple[str, ...] = ("_deny_reason", "would_answer",
                                      "_record_answer",
                                      "_deny_reason_sampled")
    #: functions that evaluate the true answer of the current query
    sensitive_functions: Set[str] = field(default_factory=lambda: {
        "repro.sdb.aggregates.true_answer",
        "repro.sdb.aggregates.evaluate_aggregate",
    })
    sensitive_classes: Dict[str, SensitiveClass] = field(
        default_factory=lambda: {
            "repro.sdb.dataset.Dataset": SensitiveClass(
                "repro.sdb.dataset.Dataset"),
        })
    #: attribute names treated as sensitive even on untyped receivers named
    #: like a dataset (defence in depth for un-annotated helpers)
    sensitive_attr_names: Set[str] = field(
        default_factory=lambda: {"values", "sorted_values"})
    dataset_like_names: Set[str] = field(
        default_factory=lambda: {"dataset", "data", "ds", "db"})
    max_depth: int = 25

    def register_sensitive_function(self, qualname: str) -> None:
        """Mark another callable as a true-answer source."""
        self.sensitive_functions.add(qualname)

    def register_sensitive_class(self, qualname: str,
                                 public_attrs: Iterable[str] = ()) -> None:
        """Mark a class as sensitive, allowlisting ``public_attrs``."""
        self.sensitive_classes[qualname] = SensitiveClass(
            qualname, frozenset(public_attrs) or frozenset({"n", "low",
                                                            "high"}))


DEFAULT_CONFIG = AnalysisConfig()


def default_package_dir() -> Path:
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# The walker
# ----------------------------------------------------------------------

class _Walker:
    def __init__(self, index: PackageIndex, resolver: Resolver,
                 config: AnalysisConfig) -> None:
        self.index = index
        self.resolver = resolver
        self.config = config
        self.findings: List[Finding] = []
        self._seen_findings: Set[Tuple] = set()
        self._cfg_cache: Dict[int, CFG] = {}

    # -- sensitivity helpers -------------------------------------------

    def _sensitive_class(self, cls: Optional[ClassInfo]
                         ) -> Optional[SensitiveClass]:
        if cls is None:
            return None
        for candidate in self.resolver.mro(cls):
            hit = self.config.sensitive_classes.get(candidate.qualname)
            if hit is not None:
                return hit
        return None

    def _root_name(self, expr: ast.expr) -> Optional[str]:
        while isinstance(expr, ast.Attribute):
            expr = expr.value
        if isinstance(expr, ast.Name):
            return expr.id
        return None

    # -- entry ----------------------------------------------------------

    def check_class(self, cls: ClassInfo) -> int:
        """Walk every entry point of one auditor class; returns how many."""
        entries = 0
        for entry_name in self.config.entry_methods:
            hit = self.resolver.find_method(cls, entry_name)
            if hit is None:
                continue
            defining, node = hit
            if _is_abstract_stub(node):
                continue
            entries += 1
            entry_frame = Frame(
                function=f"{cls.name}.{entry_name}",
                module=defining.module,
                file=self.index.relpath(defining.module),
                line=node.lineno,
            )
            self._walk(defining.module, node, cls, entry=(cls, entry_name),
                       chain=(entry_frame,), depth=0,
                       visited={(id(node), cls.qualname)},
                       extra_param_types={})
        return entries

    # -- function body scan --------------------------------------------

    def _walk(self, module: str, node: FunctionNode,
              self_class: Optional[ClassInfo],
              entry: Tuple[ClassInfo, str], chain: Tuple[Frame, ...],
              depth: int, visited: Set[Tuple],
              extra_param_types: Dict[str, ClassInfo]) -> None:
        """Flow-sensitive scan of one function body.

        The body is lowered to a statement-level CFG; local types are
        propagated forward with branch joins (a binding survives a join
        only when both arms agree), and each statement's expressions are
        scanned against the type state that actually reaches it.
        """
        env = self.resolver.param_env(module, node, self_class=self_class)
        env.locals.update(extra_param_types)
        graph = self._cfg(node)
        states = self._flow_types(graph, env)
        for stmt in graph.statements():
            local_env = TypeEnv(
                module=env.module, self_class=env.self_class,
                self_name=env.self_name,
                locals=dict(states.get(stmt.sid, env.locals)))
            call_funcs = set()
            for call in stmt_expr_nodes(stmt, (ast.Call,)):
                call_funcs.add(id(call.func))
                self._scan_call(call, module, node, local_env, entry, chain,
                                depth, visited)
            for attr in stmt_expr_nodes(stmt, (ast.Attribute,)):
                if id(attr) in call_funcs:
                    continue  # method calls are handled by _scan_call
                self._scan_attribute(attr, module, local_env, entry, chain)
            for sub in stmt_expr_nodes(stmt, (ast.Subscript,)):
                self._scan_subscript(sub, module, local_env, entry, chain)
            for loop_iter in _stmt_iteration_exprs(stmt):
                self._scan_iteration(loop_iter, module, local_env, entry,
                                     chain)

    def _cfg(self, node: FunctionNode) -> CFG:
        cached = self._cfg_cache.get(id(node))
        if cached is None:
            cached = build_cfg(node)
            self._cfg_cache[id(node)] = cached
        return cached

    def _flow_types(self, graph: CFG,
                    env: TypeEnv) -> Dict[int, Dict[str, ClassInfo]]:
        """Per-statement local-type states (forward flow, branch joins)."""
        resolver = self.resolver

        def transfer(stmt: StmtNode,
                     state: Dict[str, ClassInfo]) -> Dict[str, ClassInfo]:
            node = stmt.node
            at = TypeEnv(module=env.module, self_class=env.self_class,
                         self_name=env.self_name, locals=state)
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                inferred = resolver.infer_type(node.value, at)
                if inferred is not None:
                    state[node.targets[0].id] = inferred
                else:
                    state.pop(node.targets[0].id, None)
            elif (isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)):
                chosen = resolver._annotation_class(env.module,
                                                    node.annotation)
                if chosen is None and node.value is not None:
                    chosen = resolver.infer_type(node.value, at)
                if chosen is not None:
                    state[node.target.id] = chosen
                else:
                    state.pop(node.target.id, None)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and stmt.is_header:
                for name_node in ast.walk(node.target):
                    if isinstance(name_node, ast.Name):
                        state.pop(name_node.id, None)
            return state

        return flow_locals(graph, dict(env.locals), transfer)

    # -- sinks ----------------------------------------------------------

    def _scan_call(self, call: ast.Call, module: str, node: FunctionNode,
                   env: TypeEnv, entry: Tuple[ClassInfo, str],
                   chain: Tuple[Frame, ...], depth: int,
                   visited: Set[Tuple]) -> None:
        resolved = self.resolver.resolve_call(call.func, env)
        func_name = call.func.id if isinstance(call.func, ast.Name) else None

        # SIM001: the call evaluates a true answer.
        if (resolved is not None
                and resolved.qualname in self.config.sensitive_functions):
            self._emit(RULE_TRUE_ANSWER, module, call,
                       sink=f"call to {resolved.qualname}",
                       message="decision path evaluates the true answer "
                               f"via {resolved.qualname.rsplit('.', 1)[-1]}()",
                       entry=entry, chain=chain)
            return

        # SIM002: method call on a sensitive object.
        receiver = self._sensitive_class(resolved.self_class) \
            if resolved is not None else None
        if receiver is not None and resolved is not None \
                and resolved.constructed is None:
            method = resolved.qualname.rsplit(".", 1)[-1]
            if method not in receiver.public_attrs:
                self._emit(RULE_SENSITIVE_READ, module, call,
                           sink=f"call to {resolved.qualname}",
                           message="decision path reads sensitive values "
                                   f"via {receiver.qualname.rsplit('.', 1)[-1]}"
                                   f".{method}()",
                           entry=entry, chain=chain)
            return

        # Dataset-typed arguments.
        sensitive_args = [
            arg for arg in _call_argument_exprs(call)
            if self._sensitive_class(self.resolver.infer_type(arg, env))
            is not None
        ]
        if func_name in _PUBLIC_BUILTINS:
            pass  # len(dataset) etc: public envelope
        elif func_name in _ENUMERATING_BUILTINS and sensitive_args:
            self._emit(RULE_SENSITIVE_READ, module, call,
                       sink=f"{func_name}(<sensitive dataset>)",
                       message="decision path enumerates sensitive values "
                               f"via {func_name}()",
                       entry=entry, chain=chain)
            return
        elif sensitive_args and (resolved is None or resolved.node is None) \
                and not (resolved is not None
                         and resolved.constructed is not None):
            target = resolved.qualname if resolved is not None else (
                func_name or "<dynamic callee>")
            self._emit(RULE_SENSITIVE_ESCAPE, module, call,
                       sink=f"sensitive dataset passed to {target}",
                       message="decision path passes the sensitive dataset "
                               f"into unanalyzable call {target}",
                       entry=entry, chain=chain)
            return

        # Recurse into resolvable package-internal callees.
        if (resolved is None or resolved.node is None
                or resolved.module is None or depth >= self.config.max_depth):
            return
        if self._sensitive_class(resolved.constructed) is not None:
            return  # constructing a dataset is not a read of this one
        dispatch = resolved.self_class
        key = (id(resolved.node),
               dispatch.qualname if dispatch is not None else None)
        if key in visited:
            return
        visited.add(key)
        frame = Frame(function=resolved.qualname, module=module,
                      file=self.index.relpath(module),
                      line=call.lineno)
        # Propagate sensitive argument types into un-annotated parameters.
        extra = self._propagate_args(call, resolved, env)
        self._walk(resolved.module, resolved.node, dispatch,
                   entry=entry, chain=chain + (frame,), depth=depth + 1,
                   visited=visited, extra_param_types=extra)

    def _propagate_args(self, call: ast.Call, resolved: ResolvedCall,
                        env: TypeEnv) -> Dict[str, ClassInfo]:
        node = resolved.node
        if node is None:
            return {}
        params = [a.arg for a in (list(node.args.posonlyargs)
                                  + list(node.args.args))]
        if resolved.self_class is not None and params:
            params = params[1:]
        out: Dict[str, ClassInfo] = {}
        for param, arg in zip(params, call.args):
            if isinstance(arg, ast.Starred):
                break
            inferred = self.resolver.infer_type(arg, env)
            if inferred is not None:
                out[param] = inferred
        for kw in call.keywords:
            if kw.arg is None:
                continue
            inferred = self.resolver.infer_type(kw.value, env)
            if inferred is not None:
                out[kw.arg] = inferred
        return out

    def _scan_attribute(self, attr: ast.Attribute, module: str, env: TypeEnv,
                        entry: Tuple[ClassInfo, str],
                        chain: Tuple[Frame, ...]) -> None:
        base_cls = self.resolver.infer_type(attr.value, env)
        sensitive = self._sensitive_class(base_cls)
        if sensitive is not None:
            if env.self_class is not None and self._sensitive_class(
                    env.self_class) is not None:
                return  # the sensitive class's own methods may touch itself
            if attr.attr in sensitive.public_attrs:
                return
            self._emit(RULE_SENSITIVE_READ, module, attr,
                       sink=f"attribute {sensitive.qualname.rsplit('.', 1)[-1]}"
                            f".{attr.attr}",
                       message="decision path reads sensitive attribute "
                               f".{attr.attr}",
                       entry=entry, chain=chain)
            return
        # Name-based fallback: ``ds.values`` on an untyped dataset-like name.
        if (base_cls is None
                and attr.attr in self.config.sensitive_attr_names):
            root = self._root_name(attr.value)
            if root is not None and root.lower() in \
                    self.config.dataset_like_names:
                self._emit(RULE_SENSITIVE_READ, module, attr,
                           sink=f"attribute {root}.{attr.attr}",
                           message="decision path reads dataset-like "
                                   f"attribute {root}.{attr.attr}",
                           entry=entry, chain=chain)

    def _scan_subscript(self, sub: ast.Subscript, module: str, env: TypeEnv,
                        entry: Tuple[ClassInfo, str],
                        chain: Tuple[Frame, ...]) -> None:
        sensitive = self._sensitive_class(
            self.resolver.infer_type(sub.value, env))
        if sensitive is None:
            return
        if env.self_class is not None and self._sensitive_class(
                env.self_class) is not None:
            return
        self._emit(RULE_SENSITIVE_READ, module, sub,
                   sink="dataset element access (subscript)",
                   message="decision path reads a sensitive value by index",
                   entry=entry, chain=chain)

    def _scan_iteration(self, iter_expr: ast.expr, module: str, env: TypeEnv,
                        entry: Tuple[ClassInfo, str],
                        chain: Tuple[Frame, ...]) -> None:
        sensitive = self._sensitive_class(
            self.resolver.infer_type(iter_expr, env))
        if sensitive is None:
            return
        if env.self_class is not None and self._sensitive_class(
                env.self_class) is not None:
            return
        self._emit(RULE_SENSITIVE_READ, module, iter_expr,
                   sink="iteration over sensitive dataset",
                   message="decision path iterates over sensitive values",
                   entry=entry, chain=chain)

    # -- emission -------------------------------------------------------

    def _emit(self, rule: str, module: str, node: ast.AST, sink: str,
              message: str, entry: Tuple[ClassInfo, str],
              chain: Tuple[Frame, ...]) -> None:
        entry_cls, entry_method = entry
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        key = (rule, module, line, col, entry_cls.qualname)
        if key in self._seen_findings:
            return
        self._seen_findings.add(key)
        pragma = self.index.pragma_for(module, rule, line)
        if pragma is None:
            for frame in chain:
                pragma = self.index.pragma_for(frame.module, rule,
                                               frame.line)
                if pragma is not None:
                    break
        self.findings.append(Finding(
            rule=rule,
            message=message,
            file=self.index.relpath(module),
            line=line,
            col=col,
            entry_class=entry_cls.name,
            entry_method=entry_method,
            entry_module=entry_cls.module,
            sink=sink,
            chain=chain,
            pragma_reason=pragma,
        ))


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------

def _stmt_iteration_exprs(stmt: StmtNode) -> List[ast.expr]:
    """Iterable expressions evaluated at one CFG node.

    A ``for`` header contributes its iterable; comprehensions anywhere in
    the node's expressions contribute each generator's iterable.
    """
    out: List[ast.expr] = []
    if isinstance(stmt.node, (ast.For, ast.AsyncFor)) and stmt.is_header:
        out.append(stmt.node.iter)
    for comp_node in stmt_expr_nodes(stmt, (ast.ListComp, ast.SetComp,
                                            ast.DictComp, ast.GeneratorExp)):
        for generator in comp_node.generators:
            out.append(generator.iter)
    return out


def _call_argument_exprs(call: ast.Call) -> List[ast.expr]:
    out: List[ast.expr] = []
    for arg in call.args:
        out.append(arg.value if isinstance(arg, ast.Starred) else arg)
    for kw in call.keywords:
        out.append(kw.value)
    return out


def _is_abstract_stub(node: FunctionNode) -> bool:
    """A body that is only a docstring / pass / ellipsis / raise."""
    body = node.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant) and isinstance(
            body[0].value.value, str):
        body = body[1:]
    if not body:
        return True
    return all(isinstance(stmt, ast.Pass)
               or (isinstance(stmt, ast.Expr)
                   and isinstance(stmt.value, ast.Constant)
                   and stmt.value.value is Ellipsis)
               or isinstance(stmt, ast.Raise)
               for stmt in body)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------

def find_auditor_classes(index: PackageIndex, resolver: Resolver,
                         config: AnalysisConfig) -> List[ClassInfo]:
    """Concrete auditor classes: Auditor subclasses (or anything defining
    ``_deny_reason``) other than the abstract base itself."""
    out: List[ClassInfo] = []
    for cls in index.classes.values():
        if cls.qualname == config.base_class:
            continue
        if resolver.is_subclass_of(cls, config.base_class) \
                or "_deny_reason" in cls.methods:
            out.append(cls)
    out.sort(key=lambda c: c.qualname)
    return out


def check_package(package_dir: Union[str, Path, None] = None,
                  config: Optional[AnalysisConfig] = None,
                  source_overrides: Optional[Dict[str, str]] = None,
                  extra_modules: Optional[Iterable[Tuple[str, Path]]] = None,
                  ) -> Report:
    """Run the simulatability analyzer over a package tree.

    Parameters
    ----------
    package_dir:
        The package directory (holding ``__init__.py``); defaults to the
        installed ``repro`` package.
    config:
        Sources/sinks/entry points; defaults to the repro conventions.
    source_overrides:
        ``{path: source}`` replacements applied before parsing (tests use
        this to strip pragmas without touching the tree).
    extra_modules:
        Extra ``(dotted_name, path)`` modules analysed alongside the
        package (tests inject fixture auditors this way).

    Returns
    -------
    Report
        Structured findings; ``report.ok`` is False when any undocumented
        violation was found.
    """
    config = config or DEFAULT_CONFIG
    package_dir = Path(package_dir) if package_dir is not None \
        else default_package_dir()
    index = build_index(package_dir, package=config.package,
                        source_overrides=source_overrides,
                        extra_modules=extra_modules)
    resolver = Resolver(index)
    walker = _Walker(index, resolver, config)
    classes = find_auditor_classes(index, resolver, config)
    entry_points = 0
    for cls in classes:
        entry_points += walker.check_class(cls)
    report = Report(package=config.package, root=str(index.root),
                    findings=walker.findings,
                    entry_points=entry_points,
                    classes_checked=len(classes),
                    modules_scanned=len(index.modules))
    return report
