"""CONC rules: lock discipline and shared-state safety.

The serving tier is about to grow threads (asyncio serving, multicore
ensembles, replication — see ROADMAP.md), and the failure mode of a
threaded auditor is silent: a torn LRU update or an unsynchronised counter
doesn't crash, it mis-serves.  These rules make lock discipline a lint-time
contract, driven by the :mod:`repro.analysis.escape` summaries:

* ``CONC001`` — a class that owns a lock (``self._lock =
  threading.Lock()``) mutates instance state outside a ``with self._lock:``
  region.  ``__init__``/``__new__`` are exempt (no concurrent access before
  construction completes), as are ``*_locked`` helpers — the documented
  convention for "caller must hold the lock";
* ``CONC002`` — an explicit ``lock.acquire()`` that is not immediately
  followed by a ``try:``/``finally: lock.release()``: an exception between
  acquire and release deadlocks every later request.  ``with lock:`` is
  the fix and is never flagged;
* ``CONC003`` — a blocking call while a lock is held: ``os.fsync``
  (directly or transitively), pool fan-out / ``join``, ``time.sleep``, or
  randomized sampler work.  Serialising an fsync or a sampler run behind a
  serving lock turns one slow query into a global stall;
* ``CONC004`` — unsynchronised mutation of state the escape analysis marks
  as thread-shared: an attribute of a shared class that owns no lock, or a
  module global mutated from a worker/thread entry function outside a
  module-lock region.

All checks are syntactic-plus-CFG and deliberately conservative in scope:
only classes the escape pass marks (lock owners, declared serving roots,
thread-submission targets) are in play, so the rules stay quiet on plain
single-threaded code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .callgraph import Resolver, TypeEnv
from .escape import EscapeEngine
from .findings import (
    RULE_ACQUIRE_WITHOUT_RELEASE,
    RULE_BLOCKING_UNDER_LOCK,
    RULE_UNGUARDED_GUARDED_STATE,
    RULE_UNSYNCHRONIZED_SHARED_MUTATION,
    Finding,
    Frame,
)
from .modindex import ClassInfo, FunctionNode, PackageIndex
from .purity import EffectEngine, attr_text, iter_calls


@dataclass
class ConcurrencyConfig:
    """Scope and vocabulary of the CONC rules."""

    #: method calls that mutate their receiver in place
    mutating_methods: FrozenSet[str] = frozenset({
        "append", "appendleft", "add", "clear", "discard", "extend",
        "insert", "move_to_end", "pop", "popitem", "popleft", "remove",
        "setdefault", "sort", "update",
    })
    #: methods exempt from CONC001/CONC004: not reachable concurrently
    construction_methods: FrozenSet[str] = frozenset({
        "__init__", "__new__", "__post_init__", "__set_name__",
    })
    #: suffix marking "caller already holds the lock" helper methods
    locked_helper_suffix: str = "_locked"
    #: dotted calls that block the calling thread
    blocking_calls: FrozenSet[str] = frozenset({
        "os.fsync", "os.fdatasync", "time.sleep",
        "subprocess.run", "subprocess.check_call", "subprocess.check_output",
        "socket.create_connection",
    })
    #: receiver-attribute pairs that block: pool/thread coordination
    blocking_methods: FrozenSet[str] = frozenset({
        "join", "map", "starmap", "imap", "imap_unordered", "acquire",
        "wait",
    })
    #: receiver tokens for which blocking_methods apply
    blocking_receivers: Tuple[str, ...] = ("pool", "thread", "proc",
                                           "executor", "event")
    #: name tokens marking a local/parameter as a lock (CONC002/CONC003)
    lockish_name_tokens: Tuple[str, ...] = ("lock", "mutex", "sem")


DEFAULT_CONCURRENCY_CONFIG = ConcurrencyConfig()


class _ConcurrencyChecker:
    def __init__(self, index: PackageIndex, resolver: Resolver,
                 engine: EffectEngine, escape: EscapeEngine,
                 config: ConcurrencyConfig) -> None:
        self.index = index
        self.resolver = resolver
        self.engine = engine
        self.escape = escape
        self.config = config
        self.findings: List[Finding] = []

    # -- helpers --------------------------------------------------------

    def _lock_names_for(self, module: str, self_class: Optional[ClassInfo],
                        env: TypeEnv) -> Set[str]:
        """Textual receivers that denote a lock inside this function."""
        names: Set[str] = set()
        for attr in self.escape.lock_attrs_of(self_class):
            if env.self_name is not None:
                names.add(f"{env.self_name}.{attr}")
        for name in self.escape.module_locks.get(module, ()):
            names.add(name)
        return names

    def _is_lockish(self, text: Optional[str], lock_names: Set[str]) -> bool:
        if text is None:
            return False
        if text in lock_names:
            return True
        tail = text.rsplit(".", 1)[-1].lower()
        return any(token in tail for token in self.config.lockish_name_tokens)

    def _with_lock_regions(self, node: FunctionNode,
                           lock_names: Set[str]) -> Set[int]:
        """ids of statements lexically inside a ``with <lock>:`` body."""
        guarded: Set[int] = set()
        for stmt in ast.walk(node):
            if not isinstance(stmt, (ast.With, ast.AsyncWith)):
                continue
            if not any(self._is_lockish(attr_text(item.context_expr),
                                        lock_names)
                       for item in stmt.items):
                continue
            for body_stmt in stmt.body:
                for child in ast.walk(body_stmt):
                    guarded.add(id(child))
        return guarded

    def _self_mutations(self, node: FunctionNode, env: TypeEnv,
                        skip_attrs: Set[str]) -> List[Tuple[ast.AST, str]]:
        """(statement, description) pairs mutating ``self`` state.

        Covers attribute (re)binding, augmented assignment, subscript
        stores, ``del``, in-place mutating method calls on ``self``
        attributes, and the same calls through a trivial local alias
        (``cache = self._cache``).
        """
        if env.self_name is None:
            return []
        self_name = env.self_name
        aliases: Dict[str, str] = {}
        for stmt in ast.walk(node):
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Attribute)
                    and isinstance(stmt.value.value, ast.Name)
                    and stmt.value.value.id == self_name):
                aliases[stmt.targets[0].id] = stmt.value.attr

        def self_attr_of(expr: ast.expr) -> Optional[str]:
            """The self attribute an expression is rooted in, if any."""
            while isinstance(expr, ast.Subscript):
                expr = expr.value
            if (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == self_name):
                return expr.attr
            if isinstance(expr, ast.Name) and expr.id in aliases:
                return aliases[expr.id]
            return None

        out: List[Tuple[ast.AST, str]] = []
        for stmt in ast.walk(node):
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            elif isinstance(stmt, ast.Delete):
                targets = list(stmt.targets)
            for target in targets:
                # plain rebinding of a local alias is not a mutation
                if isinstance(target, ast.Name):
                    continue
                attr = self_attr_of(target)
                if attr is not None and attr not in skip_attrs:
                    out.append((stmt, f"write to self.{attr}"))
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Attribute)
                    and stmt.value.func.attr
                    in self.config.mutating_methods):
                attr = self_attr_of(stmt.value.func.value)
                if attr is not None and attr not in skip_attrs:
                    out.append((stmt,
                                f"self.{attr}.{stmt.value.func.attr}(...)"))
        return out

    def _is_exempt_method(self, node: FunctionNode) -> bool:
        config = self.config
        if node.name in config.construction_methods:
            return True
        if node.name.endswith(config.locked_helper_suffix):
            return True
        for deco in getattr(node, "decorator_list", ()):
            text = deco.id if isinstance(deco, ast.Name) else (
                deco.attr if isinstance(deco, ast.Attribute) else None)
            if text in ("staticmethod", "classmethod"):
                return True
        return False

    # -- CONC001 --------------------------------------------------------

    def check_conc001(self, module: str, node: FunctionNode,
                      self_class: Optional[ClassInfo],
                      env: TypeEnv) -> None:
        if not self.escape.owns_lock(self_class):
            return
        if self._is_exempt_method(node):
            return
        lock_attrs = self.escape.lock_attrs_of(self_class)
        lock_names = self._lock_names_for(module, self_class, env)
        guarded = self._with_lock_regions(node, lock_names)
        for stmt, what in self._self_mutations(node, env, lock_attrs):
            if id(stmt) in guarded:
                continue
            self._emit(
                RULE_UNGUARDED_GUARDED_STATE, module, stmt,
                sink=f"{what} in {node.name}()",
                message=f"{self_class.name} owns a lock but mutates "
                        f"instance state outside 'with self."
                        f"{sorted(lock_attrs)[0]}:' ({what}); either "
                        f"guard the mutation or rename the helper "
                        f"*{self.config.locked_helper_suffix} to document "
                        f"the caller-holds-lock contract",
                self_class=self_class, method=node.name)

    # -- CONC002 --------------------------------------------------------

    def check_conc002(self, module: str, node: FunctionNode,
                      self_class: Optional[ClassInfo],
                      env: TypeEnv) -> None:
        lock_names = self._lock_names_for(module, self_class, env)

        def acquire_receiver(stmt: ast.stmt) -> Optional[str]:
            value = None
            if isinstance(stmt, ast.Expr):
                value = stmt.value
            elif isinstance(stmt, ast.Assign):
                value = stmt.value
            if (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "acquire"):
                receiver = attr_text(value.func.value)
                if self._is_lockish(receiver, lock_names):
                    return receiver
            return None

        def releases(body: List[ast.stmt], receiver: str) -> bool:
            for stmt in body:
                for call in iter_calls(stmt):
                    if (isinstance(call.func, ast.Attribute)
                            and call.func.attr == "release"
                            and attr_text(call.func.value) == receiver):
                        return True
            return False

        def scan(body: List[ast.stmt]) -> None:
            for i, stmt in enumerate(body):
                receiver = acquire_receiver(stmt)
                if receiver is not None:
                    follower = body[i + 1] if i + 1 < len(body) else None
                    ok = (isinstance(follower, ast.Try)
                          and bool(follower.finalbody)
                          and releases(follower.finalbody, receiver))
                    if not ok:
                        self._emit(
                            RULE_ACQUIRE_WITHOUT_RELEASE, module, stmt,
                            sink=f"{receiver}.acquire() in {node.name}()",
                            message=f"{receiver}.acquire() is not followed "
                                    f"by try/finally releasing it: an "
                                    f"exception here holds the lock "
                                    f"forever (prefer 'with {receiver}:')",
                            self_class=self_class, method=node.name)
                for child_body in self._child_bodies(stmt):
                    scan(child_body)

        scan(list(node.body))

    @staticmethod
    def _child_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
        out: List[List[ast.stmt]] = []
        for fld in ("body", "orelse", "finalbody"):
            value = getattr(stmt, fld, None)
            if isinstance(value, list) and value \
                    and isinstance(value[0], ast.stmt):
                out.append(value)
        for handler in getattr(stmt, "handlers", ()):
            out.append(handler.body)
        return out

    # -- CONC003 --------------------------------------------------------

    def check_conc003(self, module: str, node: FunctionNode,
                      self_class: Optional[ClassInfo],
                      env: TypeEnv) -> None:
        lock_names = self._lock_names_for(module, self_class, env)
        for stmt in ast.walk(node):
            if not isinstance(stmt, (ast.With, ast.AsyncWith)):
                continue
            if not any(self._is_lockish(attr_text(item.context_expr),
                                        lock_names)
                       for item in stmt.items):
                continue
            for body_stmt in stmt.body:
                for call in iter_calls(body_stmt):
                    why = self._blocking_reason(call, module, env)
                    if why is None:
                        continue
                    self._emit(
                        RULE_BLOCKING_UNDER_LOCK, module, call,
                        sink=f"{why} under lock in {node.name}()",
                        message=f"blocking call while holding a lock "
                                f"({why}): one slow caller stalls every "
                                f"thread contending for this lock",
                        self_class=self_class, method=node.name)

    def _blocking_reason(self, call: ast.Call, module: str,
                         env: TypeEnv) -> Optional[str]:
        config = self.config
        facts = self.engine.call_facts(call, module, env)
        if facts.dotted in config.blocking_calls:
            return facts.dotted
        if isinstance(call.func, ast.Attribute):
            receiver = (attr_text(call.func.value) or "").lower()
            root = receiver.rsplit(".", 1)[-1]
            if (call.func.attr in config.blocking_methods
                    and any(token in root
                            for token in config.blocking_receivers)):
                return f"{receiver}.{call.func.attr}()"
        resolved = facts.resolved
        if resolved is not None and resolved.node is not None:
            if self.escape.does_fsync(resolved.node):
                return f"{resolved.qualname} (transitive fsync)"
            summary = self.engine.summary_of(resolved.node)
            if summary.draws_randomness:
                return f"{resolved.qualname} (sampler work)"
        return None

    # -- CONC004 --------------------------------------------------------

    def check_conc004_shared(self, module: str, node: FunctionNode,
                             self_class: Optional[ClassInfo],
                             env: TypeEnv) -> None:
        """Mutation of a shared class that owns no lock at all."""
        if self_class is None or not self.escape.is_shared_class(self_class):
            return
        if self.escape.owns_lock(self_class):
            return  # CONC001's business
        if self._is_exempt_method(node):
            return
        mutations = self._self_mutations(node, env, set())
        if not mutations:
            return
        stmt, what = mutations[0]
        self._emit(
            RULE_UNSYNCHRONIZED_SHARED_MUTATION, module, stmt,
            sink=f"{what} in {node.name}()",
            message=f"{self_class.name} is shared across threads (escape "
                    f"analysis) but owns no lock; {node.name}() mutates "
                    f"instance state ({what}) — add an internal "
                    f"threading.Lock and guard every read-modify-write",
            self_class=self_class, method=node.name)

    def check_conc004_worker_globals(self, module: str, node: FunctionNode,
                                     self_class: Optional[ClassInfo],
                                     env: TypeEnv) -> None:
        """Module-global mutation from a worker/thread entry function."""
        if not self.escape.is_worker_entry(node):
            return
        globs = self.escape.module_globals.get(module, set())
        declared: Set[str] = set()
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Global):
                declared.update(stmt.names)
        lock_names = set(self.escape.module_locks.get(module, set()))
        guarded = self._with_lock_regions(node, lock_names)

        def global_target(expr: ast.expr) -> Optional[str]:
            while isinstance(expr, ast.Subscript):
                expr = expr.value
            if isinstance(expr, ast.Name) and (expr.id in declared
                                               or expr.id in globs):
                return expr.id
            return None

        for stmt in ast.walk(node):
            if id(stmt) in guarded:
                continue
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            elif isinstance(stmt, ast.Delete):
                targets = list(stmt.targets)
            hits = []
            for target in targets:
                # a bare local rebind is fine; a declared-global rebind
                # or any subscript store into a module global is not
                if isinstance(target, ast.Name) and target.id not in declared:
                    continue
                name = global_target(target)
                if name is not None:
                    hits.append(name)
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Attribute)
                    and stmt.value.func.attr
                    in self.config.mutating_methods):
                name = global_target(stmt.value.func.value)
                if name is not None:
                    hits.append(name)
            for name in hits:
                self._emit(
                    RULE_UNSYNCHRONIZED_SHARED_MUTATION, module, stmt,
                    sink=f"global {name} mutated in {node.name}()",
                    message=f"worker/thread entry {node.name}() mutates "
                            f"module global {name!r} with no lock held; "
                            f"concurrent workers in the same process "
                            f"race on it",
                    self_class=self_class, method=node.name)

    # -- driver ---------------------------------------------------------

    def check_function(self, module: str, node: FunctionNode,
                       self_class: Optional[ClassInfo]) -> None:
        env = self.resolver.param_env(module, node, self_class=self_class)
        self.check_conc001(module, node, self_class, env)
        self.check_conc002(module, node, self_class, env)
        self.check_conc003(module, node, self_class, env)
        self.check_conc004_shared(module, node, self_class, env)
        self.check_conc004_worker_globals(module, node, self_class, env)

    def _emit(self, rule: str, module: str, node: ast.AST, sink: str,
              message: str, self_class: Optional[ClassInfo],
              method: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        pragma = self.index.pragma_for(module, rule, line)
        entry_class = self_class.name if self_class is not None else ""
        frame = Frame(
            function=f"{entry_class}.{method}" if entry_class else method,
            module=module,
            file=self.index.relpath(module),
            line=line,
        )
        self.findings.append(Finding(
            rule=rule,
            message=message,
            file=self.index.relpath(module),
            line=line,
            col=col,
            entry_class=entry_class,
            entry_method=method,
            entry_module=module,
            sink=sink,
            chain=(frame,),
            pragma_reason=pragma,
        ))


def check_concurrency(index: PackageIndex, resolver: Resolver,
                      engine: EffectEngine, escape: EscapeEngine,
                      config: Optional[ConcurrencyConfig] = None,
                      rules: Optional[Set[str]] = None,
                      ) -> Tuple[List[Finding], int]:
    """Run the CONC rules over every function of the package."""
    config = config or DEFAULT_CONCURRENCY_CONFIG
    checker = _ConcurrencyChecker(index, resolver, engine, escape, config)
    checked = 0
    for mod in sorted(index.modules.values(), key=lambda m: m.name):
        for node in mod.functions.values():
            checker.check_function(mod.name, node, None)
            checked += 1
        for cls in mod.classes.values():
            for node in cls.methods.values():
                checker.check_function(mod.name, node, cls)
                checked += 1
    findings = checker.findings
    if rules is not None:
        findings = [f for f in findings if f.rule in rules]
    return findings, checked
