"""Shared effect summaries for the DET/WAL/BUD rule families.

Each function/method of the analysed package gets an :class:`EffectSummary`
— does it (transitively) draw randomness, append to the audit journal/WAL,
checkpoint a budget, or pass a fault-injection site?  Summaries are
computed by classifying the *primitive* effects of each call site (dotted
stdlib/numpy names expanded through the module's import aliases, plus
name-based conventions for journal/WAL/checkpoint calls) and then
propagating them to fixpoint over the best-effort call graph from
:mod:`repro.analysis.callgraph`.

The rule modules share the same per-call classifier
(:meth:`EffectEngine.call_facts`), so "what counts as an append" is defined
exactly once:

* **randomness** — module-level ``random.*`` / ``numpy.random.*`` calls,
  unseeded factory calls (``default_rng()`` / ``as_generator()`` with no
  seed), and draw methods (``integers`` / ``random`` / ``choice`` …) on
  rng-ish receivers;
* **clock/entropy** — ``time.time``, ``os.urandom``, ``uuid.uuid4``,
  ``secrets.*``, ``datetime.now`` …; ``time.monotonic`` (and the other
  monotonic clocks) is *allowed* — it is the budget layer's sanctioned
  deadline clock and never feeds a released value;
* **journal appends** — ``AuditJournal.record_decision`` /
  ``record_replay`` / ``record_update`` and ``WriteAheadLog.append``
  (resolved or name-based, including ``getattr(obj, "record_replay", …)``
  indirection);
* **budget checkpoints** — ``BudgetScope.checkpoint`` and the
  ``checkpoint`` / ``_checkpoint`` calling conventions;
* **fault sites** — ``repro.resilience.faults.fault_site``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .callgraph import ResolvedCall, Resolver, TypeEnv
from .modindex import ClassInfo, FunctionNode, PackageIndex


@dataclass
class EffectConfig:
    """Names defining the primitive effects (see module docstring)."""

    #: factories that are fine *when seeded*: flagged only when called with
    #: no seed argument (or a literal ``None`` seed)
    seeded_factories: FrozenSet[str] = frozenset({
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "random.Random",
        "repro.rng.as_generator",
        "repro.rng.spawn",
    })
    #: dotted prefixes whose *module-level* calls use hidden global RNG state
    global_rng_prefixes: Tuple[str, ...] = ("random.", "numpy.random.",
                                            "secrets.")
    #: names under those prefixes that are not draws (types, submodule refs)
    global_rng_allow: FrozenSet[str] = frozenset({
        "numpy.random.Generator",
        "numpy.random.BitGenerator",
        "numpy.random.PCG64",
        "numpy.random.Philox",
    })
    clock_entropy: FrozenSet[str] = frozenset({
        "time.time", "time.time_ns",
        "os.urandom", "os.getrandom",
        "uuid.uuid1", "uuid.uuid4",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "random.SystemRandom",
    })
    #: deterministic-serving sanctioned clocks (the Budget deadline clock)
    allowed_clocks: FrozenSet[str] = frozenset({
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time",
    })
    #: ``Generator`` draw methods; a call ``<rng-ish>.<draw>(...)`` draws
    draw_methods: FrozenSet[str] = frozenset({
        "random", "integers", "choice", "uniform", "normal",
        "standard_normal", "shuffle", "permutation", "permuted",
        "exponential", "beta", "gamma", "binomial", "poisson",
        "multivariate_normal", "bytes", "bit_generator", "spawn",
    })
    #: receiver-name substrings that mark a receiver as an RNG handle
    rngish_receivers: Tuple[str, ...] = ("rng", "gen", "random")
    #: fully-resolved functions that append a decision/replay/update record
    append_functions: FrozenSet[str] = frozenset({
        "repro.persistence.AuditJournal.record_decision",
        "repro.persistence.AuditJournal.record_replay",
        "repro.persistence.AuditJournal.record_refusal",
        "repro.persistence.AuditJournal.record_update",
        "repro.resilience.wal.WriteAheadLog.append",
        "repro.resilience.checkpoint.CheckpointedWal.append",
        "repro.resilience.checkpoint.CheckpointedWal.raw_append",
        "repro.resilience.replication.ReplicatingWal.append",
        "repro.resilience.replication.Follower._apply_append",
        # serving tier: the frontend's deny-before-audit entry point
        # journals through the auditor's disclosure trail
        "repro.sdb.multiuser.MultiUserFrontend.refuse",
        "repro.sdb.multiuser.MultiUserFrontend._record_refusal",
    })
    #: method names that journal by convention, on any receiver
    append_method_names: FrozenSet[str] = frozenset({
        "record_decision", "record_replay", "record_refusal",
        "record_update",
    })
    #: ``x.append(...)`` receivers (lowercased dotted text suffix) that are
    #: write-ahead logs rather than plain lists
    append_receiver_suffixes: Tuple[str, ...] = ("wal", "journal", "log")
    checkpoint_functions: FrozenSet[str] = frozenset({
        "repro.resilience.budget.BudgetScope.checkpoint",
    })
    checkpoint_names: FrozenSet[str] = frozenset({
        "checkpoint", "_checkpoint",
    })
    fault_site_functions: FrozenSet[str] = frozenset({
        "repro.resilience.faults.fault_site",
    })
    #: method names that *delegate* the whole release+journal obligation
    delegate_method_names: FrozenSet[str] = frozenset({"audit"})


DEFAULT_EFFECTS = EffectConfig()


@dataclass
class CallFacts:
    """Primitive classification of one call site."""

    dotted: Optional[str] = None         #: expanded dotted callee, if any
    resolved: Optional[ResolvedCall] = None
    unseeded_rng: Optional[str] = None   #: dotted name when DET001 applies
    clock: Optional[str] = None          #: dotted name when DET002 applies
    draws: bool = False
    appends: bool = False
    delegates_audit: bool = False
    checkpoints: bool = False
    fault_site: bool = False


@dataclass
class EffectSummary:
    """Transitive effects of one function/method."""

    draws_randomness: bool = False
    appends_journal: bool = False
    checkpoints_budget: bool = False
    hits_fault_site: bool = False

    def merge(self, other: "EffectSummary") -> bool:
        """OR ``other`` in; True when anything changed."""
        before = (self.draws_randomness, self.appends_journal,
                  self.checkpoints_budget, self.hits_fault_site)
        self.draws_randomness |= other.draws_randomness
        self.appends_journal |= other.appends_journal
        self.checkpoints_budget |= other.checkpoints_budget
        self.hits_fault_site |= other.hits_fault_site
        return before != (self.draws_randomness, self.appends_journal,
                          self.checkpoints_budget, self.hits_fault_site)


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------

def iter_calls(node: ast.AST) -> List[ast.Call]:
    """Call nodes in a function body, excluding nested defs."""
    out: List[ast.Call] = []

    def visit(current: ast.AST) -> None:
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            if isinstance(child, ast.Call):
                out.append(child)
            visit(child)

    visit(node)
    return out


def attr_text(expr: ast.expr) -> Optional[str]:
    """Best-effort dotted rendering of an attribute/name chain."""
    parts: List[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return ".".join(reversed(parts))
    return None


def dotted_callee(func: ast.expr, index: PackageIndex,
                  module: str) -> Optional[str]:
    """Fully-expanded dotted name of a callee whose root is an import.

    ``np.random.default_rng`` → ``numpy.random.default_rng`` when ``np``
    aliases numpy; ``time()`` → ``time.time`` after ``from time import
    time``.  Receivers rooted in locals/``self`` return None —
    :class:`~repro.analysis.callgraph.Resolver` handles those.
    """
    text = attr_text(func)
    if text is None:
        return None
    root, _, rest = text.partition(".")
    mod = index.modules.get(module)
    target = mod.imports.get(root) if mod is not None else None
    if target is None:
        return None
    return f"{target}.{rest}" if rest else target


def getattr_append_locals(node: FunctionNode,
                          config: EffectConfig) -> Set[str]:
    """Locals bound via ``x = getattr(obj, "record_replay", ...)``."""
    names: Set[str] = set()
    for call in iter_calls(node):
        if not (isinstance(call.func, ast.Name)
                and call.func.id == "getattr" and len(call.args) >= 2):
            continue
        attr = call.args[1]
        if not (isinstance(attr, ast.Constant)
                and isinstance(attr.value, str)
                and attr.value in config.append_method_names):
            continue
        parent_assigns = [s for s in ast.walk(node)
                          if isinstance(s, ast.Assign) and s.value is call]
        for assign in parent_assigns:
            for target in assign.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _seed_argument_missing(call: ast.Call) -> bool:
    """True when a factory call carries no seed (or a literal None seed)."""
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for kw in call.keywords:
        if kw.arg in ("seed", "rng", "x"):
            return (isinstance(kw.value, ast.Constant)
                    and kw.value.value is None)
        if kw.arg is None:
            return False  # **kwargs may carry a seed — benefit of the doubt
    return True


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class EffectEngine:
    """Computes and caches effect summaries for one package index."""

    def __init__(self, index: PackageIndex, resolver: Resolver,
                 config: Optional[EffectConfig] = None) -> None:
        self.index = index
        self.resolver = resolver
        self.config = config or DEFAULT_EFFECTS
        #: id(FunctionNode) -> summary
        self._summaries: Dict[int, EffectSummary] = {}
        #: id(FunctionNode) -> callee function ids
        self._edges: Dict[int, Set[int]] = {}
        self.functions_scanned = 0
        self._compute()

    # -- per-call classification ---------------------------------------

    def call_facts(self, call: ast.Call, module: str, env: TypeEnv,
                   getattr_appends: Optional[Set[str]] = None) -> CallFacts:
        """Classify the primitive effects of one call site."""
        config = self.config
        facts = CallFacts()
        facts.dotted = dotted_callee(call.func, self.index, module)
        try:
            facts.resolved = self.resolver.resolve_call(call.func, env)
        except RecursionError:  # pragma: no cover - pathological hierarchies
            facts.resolved = None

        dotted = facts.dotted
        if dotted is not None:
            if dotted in config.seeded_factories:
                if _seed_argument_missing(call):
                    facts.unseeded_rng = dotted
            elif dotted in config.global_rng_allow:
                pass
            elif any(dotted.startswith(p)
                     for p in config.global_rng_prefixes):
                facts.unseeded_rng = dotted
                facts.draws = True
            if dotted in config.clock_entropy:
                facts.clock = dotted
            if dotted in config.fault_site_functions:
                facts.fault_site = True

        resolved = facts.resolved
        if resolved is not None:
            if resolved.qualname in config.seeded_factories:
                if _seed_argument_missing(call):
                    facts.unseeded_rng = resolved.qualname
            if resolved.qualname in config.append_functions:
                facts.appends = True
            if resolved.qualname in config.checkpoint_functions:
                facts.checkpoints = True
            if resolved.qualname in config.fault_site_functions:
                facts.fault_site = True

        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            receiver = (attr_text(call.func.value) or "").lower()
            root = receiver.rsplit(".", 1)[-1]
            if attr in config.draw_methods and any(
                    token in root for token in config.rngish_receivers):
                facts.draws = True
            if attr in config.append_method_names:
                facts.appends = True
            if attr == "append" and any(
                    root.endswith(sfx)
                    for sfx in config.append_receiver_suffixes):
                facts.appends = True
            if attr in config.checkpoint_names:
                facts.checkpoints = True
            if attr == "fault_site":
                facts.fault_site = True
            if attr in config.delegate_method_names:
                facts.delegates_audit = True
        elif isinstance(call.func, ast.Name):
            name = call.func.id
            if name in config.checkpoint_names:
                facts.checkpoints = True
            if name == "fault_site":
                facts.fault_site = True
            if getattr_appends and name in getattr_appends:
                facts.appends = True
        return facts

    def merged_facts(self, call: ast.Call, module: str, env: TypeEnv,
                     getattr_appends: Optional[Set[str]] = None) -> CallFacts:
        """Primitive facts OR the transitive summary of the resolved callee."""
        facts = self.call_facts(call, module, env, getattr_appends)
        resolved = facts.resolved
        if resolved is not None and resolved.node is not None:
            summary = self._summaries.get(id(resolved.node))
            if summary is not None:
                facts.draws = facts.draws or summary.draws_randomness
                facts.appends = facts.appends or summary.appends_journal
                facts.checkpoints = (facts.checkpoints
                                     or summary.checkpoints_budget)
                facts.fault_site = (facts.fault_site
                                    or summary.hits_fault_site)
        return facts

    def summary_of(self, node: FunctionNode) -> EffectSummary:
        """The (transitive) summary of a function node; empty if unknown."""
        return self._summaries.get(id(node), EffectSummary())

    # -- whole-package fixpoint ----------------------------------------

    def _all_functions(self) -> List[Tuple[str, FunctionNode,
                                           Optional[ClassInfo]]]:
        out: List[Tuple[str, FunctionNode, Optional[ClassInfo]]] = []
        for mod in self.index.modules.values():
            for fn in mod.functions.values():
                out.append((mod.name, fn, None))
            for cls in mod.classes.values():
                for method in cls.methods.values():
                    out.append((mod.name, method, cls))
        return out

    def _compute(self) -> None:
        functions = self._all_functions()
        self.functions_scanned = len(functions)
        for module, node, self_class in functions:
            summary = EffectSummary()
            edges: Set[int] = set()
            env = self.resolver.param_env(module, node,
                                          self_class=self_class)
            bound = getattr_append_locals(node, self.config)
            for call in iter_calls(node):
                facts = self.call_facts(call, module, env,
                                        getattr_appends=bound)
                summary.draws_randomness |= bool(facts.draws
                                                 or facts.unseeded_rng)
                summary.appends_journal |= facts.appends
                summary.checkpoints_budget |= facts.checkpoints
                summary.hits_fault_site |= facts.fault_site
                if (facts.resolved is not None
                        and facts.resolved.node is not None):
                    edges.add(id(facts.resolved.node))
            self._summaries[id(node)] = summary
            self._edges[id(node)] = edges
        changed = True
        while changed:
            changed = False
            for fid, edges in self._edges.items():
                target = self._summaries[fid]
                for callee in edges:
                    callee_summary = self._summaries.get(callee)
                    if callee_summary is not None and target.merge(
                            callee_summary):
                        changed = True
