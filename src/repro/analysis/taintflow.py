"""Value-level interprocedural taint propagation for the LEAK rules.

The SIM family (PR 1) proves decision paths do not *read* sensitive
state; the LEAK family proves sensitive *values* do not *flow out*
through side channels — exception messages, denial details, logs,
journal payloads, replication frames, or thread-shared stores.  This
module is the flow engine; :mod:`repro.analysis.leaks` turns its sink
events into findings.

The abstraction is an *origin set* per local name: ``{"source"}`` marks
data derived from a configured sensitive source (a dataset cell, a true
aggregate answer, synopsis internals), ``{"param:i"}`` marks data derived
from the function's *i*-th parameter.  Origins propagate through
assignments (including tuple unpacking and container-mutating method
calls), f-strings/format/concat, comprehensions, and attribute/subscript
flows.  Parameter origins exist so taint is *interprocedural*: each
function gets a :class:`TaintSummary` — "returns source data", "returns
its parameter *i*", "passes parameter *i* into a raise/log/journal sink"
— computed to fixpoint over the call graph exactly like
:class:`~repro.analysis.purity.EffectEngine`, so a helper that formats a
dataset value into an exception message indicts its callers.

Three kinds of names stop propagation:

* **sanitizers** — ``len``/``hash``/``isinstance``-style builtins,
  declared hash functions (``canonical_key``), and public scalar
  attributes (``.n``, ``.size``, ``.version``): attacker-computable
  projections of sensitive objects;
* **the release boundary** — ``AuditDecision.answer(...)`` /
  ``AuditDecision.deny(...)``: the *sanctioned* output channel.  Their
  results are public by definition (that is the paper's release event),
  which keeps journal records, replication frames, and the serve CLI's
  decision printing naturally clean.  The ``detail`` argument of
  ``deny`` is itself a sink (LEAK001) — checked before the boundary
  launders it;
* **past released answers** — taint is not persisted on the heap across
  methods, so ``self.history`` reads in a later call start untainted.
  Released answers are public in the paper's model; only intra-call
  flows from fresh sensitive reads are leaks.

Unlike SIM there is **no self-class exemption**: a synopsis method that
embeds its own cell values in an exception message is exactly the bug
LEAK001 exists to catch.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .callgraph import ClassInfo, ResolvedCall, Resolver, TypeEnv
from .cfg import CFG, StmtNode, build_cfg, stmt_expr_nodes
from .escape import EscapeEngine
from .modindex import FunctionNode, PackageIndex
from .purity import EffectEngine, attr_text, dotted_callee, iter_calls

#: The distinguished origin: data derived from a configured source.
SOURCE = "source"

_EMPTY: FrozenSet[str] = frozenset()
_SOURCE_ONLY: FrozenSet[str] = frozenset({SOURCE})

#: container-mutating method names: ``recv.append(tainted)`` taints recv
_MUTATOR_METHODS = frozenset({
    "append", "add", "insert", "extend", "update", "setdefault",
    "appendleft", "push",
})


def _param(i: int) -> str:
    return f"param:{i}"


def param_index(origin: str) -> Optional[int]:
    """The parameter index an origin token denotes, or None for source."""
    if origin.startswith("param:"):
        return int(origin.split(":", 1)[1])
    return None


@dataclass
class TaintConfig:
    """Sources, sanitizers, release boundary, and sinks for the package.

    Everything is keyed off the real tree: the sdb aggregate evaluators
    and dataset/table cell accessors are sources, synopsis classes are
    source *classes* (any non-public member read yields sensitive data),
    the audit-decision constructors are the release boundary, and the
    journal/WAL/replication/export surfaces are sinks.
    """

    # -- sources -------------------------------------------------------
    #: functions whose return value is sensitive
    source_functions: FrozenSet[str] = frozenset({
        "repro.sdb.aggregates.true_answer",
        "repro.sdb.aggregates.evaluate_aggregate",
    })
    #: methods (qualified) whose return value is a cell-level read
    source_methods: FrozenSet[str] = frozenset({
        "repro.sdb.table.Table.row",
        "repro.sdb.columns.TableView.column",
    })
    #: classes whose non-public member reads yield sensitive data;
    #: value = the attacker-computable (public) member allowlist
    source_classes: Dict[str, FrozenSet[str]] = field(default_factory=lambda: {
        "repro.sdb.dataset.Dataset": frozenset({
            "n", "low", "high", "subset",
        }),
        "repro.synopsis.combined.CombinedSynopsis": frozenset({
            "n", "size", "copy", "insert", "add_element",
            "is_consistent", "would_be_consistent", "propagate",
        }),
        "repro.synopsis.extreme_synopsis.ExtremeSynopsis": frozenset({
            "n", "size", "copy", "insert", "add_element",
            "is_consistent", "would_be_consistent", "propagate",
        }),
    })
    #: attribute names on *untyped* dataset-ish receivers (name fallback)
    source_attr_names: FrozenSet[str] = frozenset({
        "values", "sorted_values",
    })
    dataset_like_names: FrozenSet[str] = frozenset({
        "dataset", "data", "ds", "db",
    })
    #: ``rec[sensitive_column]``-style subscripts are cell reads
    source_index_names: FrozenSet[str] = frozenset({
        "sensitive_column", "sensitive",
    })

    # -- sanitizers ----------------------------------------------------
    sanitizer_builtins: FrozenSet[str] = frozenset({
        "len", "hash", "id", "bool", "isinstance", "issubclass", "type",
        "range", "enumerate",
    })
    sanitizer_functions: FrozenSet[str] = frozenset({
        "repro.sdb.predicates.canonical_key",
    })
    #: public scalar projections, safe on any receiver
    sanitizer_attr_names: FrozenSet[str] = frozenset({
        "n", "size", "shape", "ndim", "dtype", "version",
    })

    # -- the release boundary ------------------------------------------
    release_functions: FrozenSet[str] = frozenset({
        "repro.types.AuditDecision",
        "repro.types.AuditDecision.__init__",
        "repro.types.AuditDecision.answer",
        "repro.types.AuditDecision.deny",
    })
    release_receiver_names: FrozenSet[str] = frozenset({"AuditDecision"})
    deny_functions: FrozenSet[str] = frozenset({
        "repro.types.AuditDecision.deny",
    })

    # -- sinks ---------------------------------------------------------
    print_names: FrozenSet[str] = frozenset({"print"})
    log_callables: FrozenSet[str] = frozenset({
        "warnings.warn", "sys.stdout.write", "sys.stderr.write",
    })
    log_prefixes: Tuple[str, ...] = ("logging.",)
    #: package-internal output writers (CSV exports reach the operator)
    log_functions: FrozenSet[str] = frozenset({
        "repro.reporting.export.write_series_csv",
        "repro.reporting.export.write_table_csv",
        # serving tier: HTTP response bodies and SSE frames reach remote
        # clients — tainted values must never flow into them except
        # through the AuditDecision release boundary
        "repro.serving.protocol.json_body",
        "repro.serving.protocol.json_response",
        "repro.serving.sse.format_event",
    })
    log_method_names: FrozenSet[str] = frozenset({
        "debug", "info", "warning", "error", "exception", "critical",
        "log", "write",
    })
    log_receiver_names: FrozenSet[str] = frozenset({
        "logger", "log", "logging", "warnings", "stdout", "stderr",
    })
    #: replication frame builders: payloads cross the wire
    frame_functions: FrozenSet[str] = frozenset({
        "repro.resilience.replication.encode_frame",
    })
    frame_method_names: FrozenSet[str] = frozenset({"encode_frame"})

    #: fixpoint safety valve (reprocessings per function)
    max_passes_per_function: int = 40


DEFAULT_TAINT_CONFIG = TaintConfig()


@dataclass(frozen=True)
class TaintSummary:
    """Interprocedural taint behaviour of one function/method."""

    #: the return value carries source taint
    returns_source: bool = False
    #: parameter indices whose taint flows into the return value
    param_returns: FrozenSet[int] = _EMPTY  # type: ignore[assignment]
    #: sink kind -> parameter indices that reach such a sink inside
    param_sinks: Tuple[Tuple[str, FrozenSet[int]], ...] = ()

    def sink_params(self, kind: str) -> FrozenSet[int]:
        for k, idxs in self.param_sinks:
            if k == kind:
                return idxs
        return frozenset()


_EMPTY_SUMMARY = TaintSummary()


@dataclass
class SinkEvent:
    """One value reaching an output channel inside one function.

    ``kind`` is one of ``raise`` / ``deny`` / ``log`` / ``journal`` /
    ``shared``; :mod:`repro.analysis.leaks` maps kinds to LEAK rules.
    ``origins`` may contain :data:`SOURCE` (a finding at this site) and/or
    parameter indices (a summary bit consumed at call sites).
    """

    kind: str
    node: ast.AST
    sink: str
    origins: FrozenSet[str]
    #: for ``deny``: the detail expression is built from constants only
    constantish: bool = True
    #: qualname of the callee when the sink is inside a summarised callee
    via: Optional[str] = None


def snippet(node: ast.AST, limit: int = 88) -> str:
    """Whitespace-normalised source rendering for sink descriptions.

    Built from the AST (``ast.unparse``), so a sink that spans reformatted
    source lines renders identically — baseline fingerprints survive
    reflowing a multi-line f-string.
    """
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - exotic nodes
        text = type(node).__name__
    text = " ".join(text.split())
    if len(text) > limit:
        text = text[:limit - 3] + "..."
    return text


def constantish(expr: Optional[ast.expr]) -> bool:
    """Is a denial-detail expression built from constants only?

    Constants, f-strings over constants, concatenation of constants, and
    ``DenialReason.*``/``*.value`` enum renderings qualify; anything else
    (a name, a computed size, an interpolated threshold) does not.
    """
    if expr is None:
        return True
    if isinstance(expr, ast.Constant):
        return True
    if isinstance(expr, ast.JoinedStr):
        return all(constantish(v) for v in expr.values)
    if isinstance(expr, ast.FormattedValue):
        return constantish(expr.value)
    if isinstance(expr, ast.BinOp):
        return constantish(expr.left) and constantish(expr.right)
    if isinstance(expr, ast.Attribute):
        text = attr_text(expr)
        return text is not None and text.startswith("DenialReason.")
    return False


def function_params(node: FunctionNode, skip_self: bool) -> List[str]:
    """Positional-then-keyword-only parameter names, ``self`` stripped."""
    args = node.args
    params = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    if skip_self and params:
        params = params[1:]
    params += [a.arg for a in args.kwonlyargs]
    return params


@dataclass
class _FnContext:
    """Cached per-function scanning state (env, CFG, resolutions)."""

    module: str
    node: FunctionNode
    self_class: Optional[ClassInfo]
    env: TypeEnv
    cfg: CFG
    param_taints: Dict[str, FrozenSet[str]]
    resolve_cache: Dict[int, Optional[ResolvedCall]] = field(
        default_factory=dict)
    type_cache: Dict[int, Optional[ClassInfo]] = field(default_factory=dict)


class TaintEngine:
    """Computes sink events and taint summaries for one package index."""

    def __init__(self, index: PackageIndex, resolver: Resolver,
                 engine: EffectEngine, escape: Optional[EscapeEngine] = None,
                 config: Optional[TaintConfig] = None) -> None:
        self.index = index
        self.resolver = resolver
        self.engine = engine
        self.escape = escape
        self.config = config or DEFAULT_TAINT_CONFIG
        self._summaries: Dict[int, TaintSummary] = {}
        self._events: Dict[int, List[SinkEvent]] = {}
        self._contexts: Dict[int, _FnContext] = {}
        self._callers: Dict[int, Set[int]] = {}
        self.functions_scanned = 0
        self._compute()

    # -- public accessors ----------------------------------------------

    def summary_of(self, node: FunctionNode) -> TaintSummary:
        return self._summaries.get(id(node), _EMPTY_SUMMARY)

    def events_for(self, node: FunctionNode) -> List[SinkEvent]:
        """Sink events of one function, consistent with the fixpoint."""
        return self._events.get(id(node), [])

    # -- context and resolution caches ---------------------------------

    def _context(self, module: str, node: FunctionNode,
                 self_class: Optional[ClassInfo]) -> _FnContext:
        ctx = self._contexts.get(id(node))
        if ctx is not None:
            return ctx
        env = self.resolver.param_env(module, node, self_class=self_class)
        self._infer_assign_types(node, env)
        params = function_params(node, skip_self=self_class is not None)
        param_taints = {name: frozenset({_param(i)})
                        for i, name in enumerate(params)}
        ctx = _FnContext(module=module, node=node, self_class=self_class,
                         env=env, cfg=build_cfg(node),
                         param_taints=param_taints)
        self._contexts[id(node)] = ctx
        return ctx

    def _infer_assign_types(self, node: FunctionNode, env: TypeEnv) -> None:
        assigns = [stmt for stmt in ast.walk(node)
                   if isinstance(stmt, ast.Assign)]
        assigns.sort(key=lambda stmt: stmt.lineno)
        for stmt in assigns:
            if len(stmt.targets) != 1 or not isinstance(stmt.targets[0],
                                                        ast.Name):
                continue
            inferred = self.resolver.infer_type(stmt.value, env)
            if inferred is not None:
                env.locals[stmt.targets[0].id] = inferred

    def _resolve(self, func: ast.expr, ctx: _FnContext
                 ) -> Optional[ResolvedCall]:
        cached = ctx.resolve_cache.get(id(func))
        if id(func) in ctx.resolve_cache:
            return cached
        try:
            resolved = self.resolver.resolve_call(func, ctx.env)
        except RecursionError:  # pragma: no cover - pathological MROs
            resolved = None
        ctx.resolve_cache[id(func)] = resolved
        return resolved

    def _infer(self, expr: ast.expr, ctx: _FnContext) -> Optional[ClassInfo]:
        cached = ctx.type_cache.get(id(expr))
        if id(expr) in ctx.type_cache:
            return cached
        try:
            inferred = self.resolver.infer_type(expr, ctx.env)
        except RecursionError:  # pragma: no cover
            inferred = None
        ctx.type_cache[id(expr)] = inferred
        return inferred

    def _source_public(self, cls: Optional[ClassInfo]
                       ) -> Optional[FrozenSet[str]]:
        """The public-member allowlist when ``cls`` is a source class."""
        if cls is None:
            return None
        for c in self.resolver.mro(cls):
            public = self.config.source_classes.get(c.qualname)
            if public is not None:
                return public
        return None

    # -- expression evaluation -----------------------------------------

    def expr_taint(self, expr: Optional[ast.expr],
                   state: Dict[str, FrozenSet[str]],
                   ctx: _FnContext) -> FrozenSet[str]:
        """The origin set of one expression under ``state``."""
        if expr is None or isinstance(expr, (ast.Constant, ast.Lambda)):
            return _EMPTY
        if isinstance(expr, ast.Name):
            return state.get(expr.id, _EMPTY)
        if isinstance(expr, ast.Call):
            return self.call_taint(expr, state, ctx)
        if isinstance(expr, ast.Attribute):
            return self._attribute_taint(expr, state, ctx)
        if isinstance(expr, ast.Subscript):
            return self._subscript_taint(expr, state, ctx)
        if isinstance(expr, ast.Compare):
            # one-bit predicates: explicit value flows only (paper model —
            # decision bits are the sanctioned channel, audited separately)
            return _EMPTY
        if isinstance(expr, (ast.JoinedStr, ast.Tuple, ast.List, ast.Set)):
            values = (expr.values if isinstance(expr, ast.JoinedStr)
                      else expr.elts)
            out: FrozenSet[str] = _EMPTY
            for item in values:
                out |= self.expr_taint(item, state, ctx)
            return out
        if isinstance(expr, ast.FormattedValue):
            out = self.expr_taint(expr.value, state, ctx)
            if expr.format_spec is not None:
                out |= self.expr_taint(expr.format_spec, state, ctx)
            return out
        if isinstance(expr, ast.Dict):
            out = _EMPTY
            for key in expr.keys:
                out |= self.expr_taint(key, state, ctx)
            for value in expr.values:
                out |= self.expr_taint(value, state, ctx)
            return out
        if isinstance(expr, ast.BinOp):
            return (self.expr_taint(expr.left, state, ctx)
                    | self.expr_taint(expr.right, state, ctx))
        if isinstance(expr, ast.BoolOp):
            out = _EMPTY
            for value in expr.values:
                out |= self.expr_taint(value, state, ctx)
            return out
        if isinstance(expr, (ast.UnaryOp, ast.Starred, ast.Await)):
            inner = (expr.operand if isinstance(expr, ast.UnaryOp)
                     else expr.value)
            return self.expr_taint(inner, state, ctx)
        if isinstance(expr, ast.IfExp):
            return (self.expr_taint(expr.body, state, ctx)
                    | self.expr_taint(expr.orelse, state, ctx))
        if isinstance(expr, ast.NamedExpr):
            return self.expr_taint(expr.value, state, ctx)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._comprehension_taint(expr, state, ctx)
        if isinstance(expr, ast.Slice):
            out = _EMPTY
            for part in (expr.lower, expr.upper, expr.step):
                out |= self.expr_taint(part, state, ctx)
            return out
        # conservative default: union over child expressions
        out = _EMPTY
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                out |= self.expr_taint(child, state, ctx)
        return out

    def _attribute_taint(self, expr: ast.Attribute,
                         state: Dict[str, FrozenSet[str]],
                         ctx: _FnContext) -> FrozenSet[str]:
        public = self._source_public(self._infer(expr.value, ctx))
        if public is not None and expr.attr not in public:
            return _SOURCE_ONLY
        if expr.attr in self.config.sanitizer_attr_names:
            return _EMPTY
        if public is None and expr.attr in self.config.source_attr_names:
            root = _root_name(expr.value)
            if (root is not None
                    and root.lower() in self.config.dataset_like_names):
                return _SOURCE_ONLY
        return self.expr_taint(expr.value, state, ctx)

    def _subscript_taint(self, expr: ast.Subscript,
                         state: Dict[str, FrozenSet[str]],
                         ctx: _FnContext) -> FrozenSet[str]:
        public = self._source_public(self._infer(expr.value, ctx))
        if public is not None:
            return _SOURCE_ONLY
        base = self.expr_taint(expr.value, state, ctx)
        index = expr.slice
        if (isinstance(index, ast.Name)
                and index.id in self.config.source_index_names):
            # ``rec[sensitive_column]``: a cell read out of a raw record
            return base | _SOURCE_ONLY
        return base | self.expr_taint(index, state, ctx)

    def _comprehension_taint(self, expr: ast.expr,
                             state: Dict[str, FrozenSet[str]],
                             ctx: _FnContext) -> FrozenSet[str]:
        inner = dict(state)
        for gen in expr.generators:  # type: ignore[attr-defined]
            iter_taint = self._iteration_taint(gen.iter, inner, ctx)
            for name_node in ast.walk(gen.target):
                if isinstance(name_node, ast.Name):
                    if iter_taint:
                        inner[name_node.id] = iter_taint
                    else:
                        inner.pop(name_node.id, None)
        if isinstance(expr, ast.DictComp):
            return (self.expr_taint(expr.key, inner, ctx)
                    | self.expr_taint(expr.value, inner, ctx))
        return self.expr_taint(expr.elt, inner, ctx)  # type: ignore

    def _iteration_taint(self, iterable: ast.expr,
                         state: Dict[str, FrozenSet[str]],
                         ctx: _FnContext) -> FrozenSet[str]:
        """Taint of the *elements* yielded by iterating ``iterable``."""
        taint = self.expr_taint(iterable, state, ctx)
        if self._source_public(self._infer(iterable, ctx)) is not None:
            # iterating a source object enumerates its cells
            taint |= _SOURCE_ONLY
        return taint

    # -- call evaluation -----------------------------------------------

    def call_taint(self, call: ast.Call, state: Dict[str, FrozenSet[str]],
                   ctx: _FnContext) -> FrozenSet[str]:
        """The origin set of a call's return value."""
        config = self.config
        func = call.func
        name = func.id if isinstance(func, ast.Name) else None
        dotted = dotted_callee(func, self.index, ctx.module)
        resolved = self._resolve(func, ctx)
        qual = resolved.qualname if resolved is not None else None

        if name in config.sanitizer_builtins:
            return _EMPTY
        for candidate in (qual, dotted):
            if candidate in config.sanitizer_functions:
                return _EMPTY
            if candidate in config.release_functions:
                return _EMPTY
        if (isinstance(func, ast.Attribute)
                and func.attr in ("answer", "deny")
                and attr_text(func.value) in config.release_receiver_names):
            return _EMPTY
        if qual in config.source_functions or dotted in config.source_functions:
            return _SOURCE_ONLY
        if qual in config.source_methods:
            return _SOURCE_ONLY
        if resolved is not None and resolved.constructed is not None:
            constructed = resolved.constructed
            if self._source_public(constructed) is not None:
                # constructing a synopsis/dataset yields the *handle*, not
                # cell data — reads off it are the sources
                return _EMPTY
            if (self.escape is not None
                    and self.escape.is_shared_class(constructed)):
                # same for the serving objects that *own* the data
                # (engine, frontend, cache): the handle is public, reads
                # off it are governed by the source/attribute rules
                return _EMPTY
            # other constructors: a record wrapping a tainted value stays
            # tainted (fall through to the argument union)
        elif resolved is not None and resolved.self_class is not None:
            public = self._source_public(resolved.self_class)
            if public is not None:
                method = (qual or "").rsplit(".", 1)[-1]
                return _EMPTY if method in public else _SOURCE_ONLY

        receiver = (self.expr_taint(func.value, state, ctx)
                    if isinstance(func, ast.Attribute) else _EMPTY)
        arg_taints: List[FrozenSet[str]] = []
        starred = False
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                starred = True
                arg_taints.append(self.expr_taint(arg.value, state, ctx))
            else:
                arg_taints.append(self.expr_taint(arg, state, ctx))
        kw_taints: Dict[Optional[str], FrozenSet[str]] = {}
        for kw in call.keywords:
            kw_taints[kw.arg] = (kw_taints.get(kw.arg, _EMPTY)
                                 | self.expr_taint(kw.value, state, ctx))

        if (resolved is not None and resolved.node is not None
                and resolved.constructed is None and not starred
                and None not in kw_taints):
            summary = self._summaries.get(id(resolved.node))
            if summary is not None:
                out: Set[str] = set()
                if summary.returns_source:
                    out.add(SOURCE)
                mapping = self._arg_origins(call, resolved, arg_taints,
                                            kw_taints)
                for i in summary.param_returns:
                    out |= mapping.get(i, _EMPTY)
                return frozenset(out) | receiver
        # unknown callee (str(), .join(), .format(), numpy, ...): the
        # result derives from whatever went in
        out = set(receiver)
        for taint in arg_taints:
            out |= taint
        for taint in kw_taints.values():
            out |= taint
        return frozenset(out)

    def _arg_origins(self, call: ast.Call, resolved: ResolvedCall,
                     arg_taints: List[FrozenSet[str]],
                     kw_taints: Dict[Optional[str], FrozenSet[str]],
                     ) -> Dict[int, FrozenSet[str]]:
        """Map callee parameter index -> caller-side origin set."""
        assert resolved.node is not None
        skip_self = (resolved.self_class is not None
                     or resolved.constructed is not None)
        params = function_params(resolved.node, skip_self=skip_self)
        mapping: Dict[int, FrozenSet[str]] = {}
        for pos, taint in enumerate(arg_taints):
            if pos < len(params) and taint:
                mapping[pos] = mapping.get(pos, _EMPTY) | taint
        index_of = {p: i for i, p in enumerate(params)}
        for kw_name, taint in kw_taints.items():
            if kw_name is None or not taint:
                continue
            i = index_of.get(kw_name)
            if i is not None:
                mapping[i] = mapping.get(i, _EMPTY) | taint
        return mapping

    # -- flow analysis --------------------------------------------------

    def _taint_states(self, ctx: _FnContext
                      ) -> Dict[int, Dict[str, FrozenSet[str]]]:
        """Union-join forward flow: state *before* each CFG node.

        :func:`~repro.analysis.cfg.flow_locals` intersects at joins (right
        for *typing*); taint must **union** — a value tainted on one arm is
        tainted after the join.  Origin sets are finite, the transfer is
        monotone under union, so this terminates; ``max_rounds`` is a
        safety valve.
        """
        cfg = ctx.cfg
        initial = dict(ctx.param_taints)
        before: Dict[int, Dict[str, FrozenSet[str]]] = {}
        after: Dict[int, Dict[str, FrozenSet[str]]] = {}
        order = sorted(cfg.nodes)
        for _ in range(16):
            changed = False
            for sid in order:
                node = cfg.nodes[sid]
                if sid == cfg.entry:
                    state = dict(initial)
                else:
                    pred_states = [after[p] for p in node.preds if p in after]
                    if pred_states:
                        state = {}
                        for pred_state in pred_states:
                            for key, value in pred_state.items():
                                state[key] = state.get(key, _EMPTY) | value
                    else:
                        state = dict(initial)
                if before.get(sid) != state:
                    before[sid] = dict(state)
                    changed = True
                out = (self._transfer(node, dict(state), ctx)
                       if node.node is not None else dict(state))
                if after.get(sid) != out:
                    after[sid] = out
                    changed = True
            if not changed:
                break
        return before

    def _transfer(self, stmt: StmtNode, state: Dict[str, FrozenSet[str]],
                  ctx: _FnContext) -> Dict[str, FrozenSet[str]]:
        node = stmt.node
        if isinstance(node, ast.Assign):
            taint = self.expr_taint(node.value, state, ctx)
            for target in node.targets:
                self._bind(target, taint, state, ctx)
        elif isinstance(node, ast.AugAssign):
            taint = self.expr_taint(node.value, state, ctx)
            if isinstance(node.target, ast.Name):
                taint |= state.get(node.target.id, _EMPTY)
            self._bind(node.target, taint, state, ctx)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._bind(node.target,
                       self.expr_taint(node.value, state, ctx), state, ctx)
        elif isinstance(node, (ast.For, ast.AsyncFor)) and stmt.is_header:
            taint = self._iteration_taint(node.iter, state, ctx)
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    if taint:
                        state[name_node.id] = taint
                    else:
                        state.pop(name_node.id, None)
        elif isinstance(node, (ast.With, ast.AsyncWith)) and stmt.is_header:
            for item in node.items:
                if item.optional_vars is not None:
                    taint = self.expr_taint(item.context_expr, state, ctx)
                    self._bind(item.optional_vars, taint, state, ctx)
        # ``msgs.append(tainted)`` taints msgs — value flows into the
        # container the statement mutates
        for call in stmt_expr_nodes(stmt, (ast.Call,)):
            func = call.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS):
                root = _root_name(func.value)
                if root is None:
                    continue
                taint: FrozenSet[str] = _EMPTY
                for arg in call.args:
                    inner = arg.value if isinstance(arg, ast.Starred) else arg
                    taint |= self.expr_taint(inner, state, ctx)
                for kw in call.keywords:
                    taint |= self.expr_taint(kw.value, state, ctx)
                if taint:
                    state[root] = state.get(root, _EMPTY) | taint
        return state

    def _bind(self, target: ast.expr, taint: FrozenSet[str],
              state: Dict[str, FrozenSet[str]], ctx: _FnContext) -> None:
        if isinstance(target, ast.Name):
            if taint:
                state[target.id] = taint
            else:
                state.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint, state, ctx)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint, state, ctx)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # storing into obj.x / obj[k] taints the local holding obj
            root = _root_name(target.value)
            if root is not None and taint:
                state[root] = state.get(root, _EMPTY) | taint

    # -- sink detection -------------------------------------------------

    def _scan_statement(self, stmt: StmtNode,
                        state: Dict[str, FrozenSet[str]],
                        ctx: _FnContext, events: List[SinkEvent]) -> None:
        node = stmt.node
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            if isinstance(exc, ast.Call):
                origins: FrozenSet[str] = _EMPTY
                for arg in exc.args:
                    inner = (arg.value if isinstance(arg, ast.Starred)
                             else arg)
                    origins |= self.expr_taint(inner, state, ctx)
                for kw in exc.keywords:
                    origins |= self.expr_taint(kw.value, state, ctx)
            else:
                origins = self.expr_taint(exc, state, ctx)
            if origins:
                events.append(SinkEvent(
                    kind="raise", node=node,
                    sink=f"raise {snippet(exc)}", origins=origins))
        for call in stmt_expr_nodes(stmt, (ast.Call,)):
            self._scan_call(call, state, ctx, events)
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or self.escape is None:
            return
        flat: List[ast.expr] = []
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                flat.extend(target.elts)
            else:
                flat.append(target)
        value_taint: Optional[FrozenSet[str]] = None
        for target in flat:
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                continue
            if not self.escape.is_shared_class(
                    self._infer(target.value, ctx)):
                continue
            root = _root_name(target.value)
            if (root is not None and root == ctx.env.self_name
                    and ctx.node.name == "__init__"):
                # a shared class populating itself during its own
                # construction is ownership, not a leak into live state
                continue
            if value_taint is None:
                value_taint = self.expr_taint(value, state, ctx)
            if value_taint:
                events.append(SinkEvent(
                    kind="shared", node=target,
                    sink=f"store to {snippet(target)}",
                    origins=value_taint))

    def _scan_call(self, call: ast.Call, state: Dict[str, FrozenSet[str]],
                   ctx: _FnContext, events: List[SinkEvent]) -> None:
        config = self.config
        func = call.func
        name = func.id if isinstance(func, ast.Name) else None
        dotted = dotted_callee(func, self.index, ctx.module)
        resolved = self._resolve(func, ctx)
        qual = resolved.qualname if resolved is not None else None

        def args_taint() -> FrozenSet[str]:
            out: FrozenSet[str] = _EMPTY
            for arg in call.args:
                inner = arg.value if isinstance(arg, ast.Starred) else arg
                out |= self.expr_taint(inner, state, ctx)
            for kw in call.keywords:
                out |= self.expr_taint(kw.value, state, ctx)
            return out

        is_deny = qual in config.deny_functions or (
            isinstance(func, ast.Attribute) and func.attr == "deny"
            and attr_text(func.value) in config.release_receiver_names)
        if is_deny:
            detail: Optional[ast.expr] = None
            if len(call.args) > 1:
                detail = call.args[1]
            else:
                for kw in call.keywords:
                    if kw.arg == "detail":
                        detail = kw.value
            if detail is not None:
                origins = self.expr_taint(detail, state, ctx)
                is_const = constantish(detail)
                if origins or not is_const:
                    events.append(SinkEvent(
                        kind="deny", node=call,
                        sink=f"deny(detail={snippet(detail)})",
                        origins=origins, constantish=is_const))
            return
        if qual in config.release_functions:
            return

        is_log = (name in config.print_names
                  or dotted in config.log_callables
                  or qual in config.log_functions
                  or dotted in config.log_functions
                  or (dotted is not None
                      and dotted.startswith(config.log_prefixes)))
        if not is_log and isinstance(func, ast.Attribute):
            root = (_root_name(func.value) or "").lower()
            if (func.attr in config.log_method_names
                    and root in config.log_receiver_names):
                is_log = True
        if is_log:
            origins = args_taint()
            if origins:
                events.append(SinkEvent(
                    kind="log", node=call,
                    sink=f"{snippet(func)}(...)", origins=origins))
            return

        facts = self.engine.call_facts(call, ctx.module, ctx.env)
        is_frame = (qual in config.frame_functions
                    or dotted in config.frame_functions
                    or name in config.frame_method_names
                    or (isinstance(func, ast.Attribute)
                        and func.attr in config.frame_method_names))
        if facts.appends or is_frame:
            origins = args_taint()
            if origins:
                kind_text = "frame" if is_frame else "append"
                events.append(SinkEvent(
                    kind="journal", node=call,
                    sink=f"{snippet(func)}(...) {kind_text} payload",
                    origins=origins))
            return

        if resolved is not None and resolved.node is not None:
            summary = self._summaries.get(id(resolved.node))
            if summary is None or not summary.param_sinks:
                return
            arg_taints = [
                self.expr_taint(
                    a.value if isinstance(a, ast.Starred) else a, state, ctx)
                for a in call.args]
            if any(isinstance(a, ast.Starred) for a in call.args):
                return
            kw_taints: Dict[Optional[str], FrozenSet[str]] = {}
            for kw in call.keywords:
                kw_taints[kw.arg] = (kw_taints.get(kw.arg, _EMPTY)
                                     | self.expr_taint(kw.value, state, ctx))
            if None in kw_taints:
                return
            mapping = self._arg_origins(call, resolved, arg_taints,
                                        kw_taints)
            for kind, idxs in summary.param_sinks:
                if kind == "shared" and resolved.constructed is not None:
                    # constructing a shared object is ownership transfer,
                    # not a store into already-live shared state
                    continue
                origins = _EMPTY
                for i in idxs:
                    origins |= mapping.get(i, _EMPTY)
                if origins:
                    events.append(SinkEvent(
                        kind=kind, node=call,
                        sink=f"{snippet(func)}(...)",
                        origins=origins, via=qual))

    # -- per-function analysis and the fixpoint -------------------------

    def _analyze(self, ctx: _FnContext
                 ) -> Tuple[TaintSummary, List[SinkEvent]]:
        states = self._taint_states(ctx)
        events: List[SinkEvent] = []
        for stmt in ctx.cfg.statements():
            state = states.get(stmt.sid, ctx.param_taints)
            self._scan_statement(stmt, state, ctx, events)
        returns_source = False
        param_returns: Set[int] = set()
        for sid in ctx.cfg.returns:
            ret = ctx.cfg.nodes[sid].node
            if not isinstance(ret, ast.Return) or ret.value is None:
                continue
            taint = self.expr_taint(
                ret.value, states.get(sid, ctx.param_taints), ctx)
            for origin in taint:
                if origin == SOURCE:
                    returns_source = True
                else:
                    index = param_index(origin)
                    if index is not None:
                        param_returns.add(index)
        param_sinks: Dict[str, Set[int]] = {}
        for event in events:
            for origin in event.origins:
                index = param_index(origin)
                if index is not None:
                    param_sinks.setdefault(event.kind, set()).add(index)
        summary = TaintSummary(
            returns_source=returns_source,
            param_returns=frozenset(param_returns),
            param_sinks=tuple(sorted(
                (kind, frozenset(idxs))
                for kind, idxs in param_sinks.items())),
        )
        return summary, events

    def _compute(self) -> None:
        functions = self._all_functions()
        self.functions_scanned = len(functions)
        by_id = {id(node): (module, node, self_class)
                 for module, node, self_class in functions}
        for fid in by_id:
            self._summaries[fid] = _EMPTY_SUMMARY
        # reverse call edges drive the worklist
        for module, node, self_class in functions:
            ctx = self._context(module, node, self_class)
            for call in iter_calls(node):
                resolved = self._resolve(call.func, ctx)
                if resolved is not None and resolved.node is not None:
                    self._callers.setdefault(
                        id(resolved.node), set()).add(id(node))
        pending = deque(by_id)
        queued = set(by_id)
        passes: Dict[int, int] = {}
        while pending:
            fid = pending.popleft()
            queued.discard(fid)
            passes[fid] = passes.get(fid, 0) + 1
            if passes[fid] > self.config.max_passes_per_function:
                continue  # pragma: no cover - safety valve
            module, node, self_class = by_id[fid]
            ctx = self._context(module, node, self_class)
            summary, events = self._analyze(ctx)
            self._events[fid] = events
            if summary != self._summaries[fid]:
                self._summaries[fid] = summary
                for caller in self._callers.get(fid, ()):
                    if caller not in queued and caller in by_id:
                        pending.append(caller)
                        queued.add(caller)

    def _all_functions(self):
        out = []
        for mod in sorted(self.index.modules.values(),
                          key=lambda m: m.name):
            for fn in mod.functions.values():
                out.append((mod.name, fn, None))
            for cls in mod.classes.values():
                for method in cls.methods.values():
                    out.append((mod.name, method, cls))
        return out


def _root_name(expr: ast.expr) -> Optional[str]:
    """The base Name an attribute/subscript chain hangs off, if any."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None
