"""Static analysis tooling enforcing the paper's safety contracts.

The flagship check is the *simulatability* taint analyzer
(:mod:`repro.analysis.simulatability`): it statically proves that auditor
decision paths never touch the sensitive data, the invariant the whole
reproduction rests on (paper §2.2).  Run it as a library::

    from repro.analysis import check_package
    report = check_package()
    assert report.ok, report.format_text()

or from the shell (non-zero exit on undocumented violations)::

    repro-audit lint --format json

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and pragma syntax.
"""

from .findings import (
    RULE_SENSITIVE_ESCAPE,
    RULE_SENSITIVE_READ,
    RULE_TRUE_ANSWER,
    SCHEMA_VERSION,
    Finding,
    Frame,
    Report,
)
from .simulatability import (
    DEFAULT_CONFIG,
    AnalysisConfig,
    SensitiveClass,
    check_package,
    default_package_dir,
    find_auditor_classes,
)

__all__ = [
    "AnalysisConfig",
    "DEFAULT_CONFIG",
    "Finding",
    "Frame",
    "Report",
    "RULE_SENSITIVE_ESCAPE",
    "RULE_SENSITIVE_READ",
    "RULE_TRUE_ANSWER",
    "SCHEMA_VERSION",
    "SensitiveClass",
    "check_package",
    "default_package_dir",
    "find_auditor_classes",
]
