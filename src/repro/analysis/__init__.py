"""Static analysis tooling enforcing the paper's safety contracts.

Eight rule families prove the serving invariants at lint time:

* **SIM** (:mod:`~repro.analysis.simulatability`) — auditor decision paths
  never touch the sensitive data (paper §2.2);
* **DET** (:mod:`~repro.analysis.determinism`) — decision/sampler paths
  are bitwise deterministic: no unseeded RNG, wall-clock reads, or
  set/dict-iteration-order dependence;
* **WAL** (:mod:`~repro.analysis.ordering`) — every released answer is
  dominated by an audit-journal append (fail-closed ordering);
* **BUD** (:mod:`~repro.analysis.ordering`) — sampler/chain loops
  checkpoint their budget so exhaustion can cancel them cooperatively;
* **CONC** (:mod:`~repro.analysis.concurrency`) — shared serving state is
  mutated only under its lock, locks are released on every exception
  path, and nothing blocks while holding one;
* **FORK** (:mod:`~repro.analysis.forksafety`) — worker payloads carry
  seeds/paths (never live handles or generators), worker functions are
  effect-free, and multiprocessing always uses the ``spawn`` context;
* **ATOM** (:mod:`~repro.analysis.atomics`) — every durability-artifact
  rename follows the fsync → replace → dir-fsync protocol;
* **LEAK** (:mod:`~repro.analysis.taintflow` + :mod:`~repro.analysis.leaks`)
  — value-level taint flow: sensitive values (dataset cells, true
  answers, synopsis internals) never escape through exception messages,
  denial details, logs, journal/replication payloads, or thread-shared
  state.

Run the SIM-only legacy entry point or the full analysis as a library::

    from repro.analysis import analyze_package, check_package
    assert check_package().ok                      # SIM only
    assert analyze_package().ok                    # all eight families

or from the shell (non-zero exit on undocumented violations)::

    repro-audit lint --select CONC,FORK,ATOM --format sarif

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and pragma syntax.
"""

from .atomics import AtomicityConfig, check_atomics
from .baseline import apply_baseline, load_baseline, write_baseline
from .concurrency import ConcurrencyConfig, check_concurrency
from .determinism import DeterminismConfig, check_determinism
from .driver import active_rules, analyze_package
from .escape import EscapeConfig, EscapeEngine
from .findings import (
    ALL_RULES,
    RULE_ACQUIRE_WITHOUT_RELEASE,
    RULE_BLOCKING_UNDER_LOCK,
    RULE_EFFECTFUL_WORKER_FN,
    RULE_FAMILIES,
    RULE_FSYNC_WITHOUT_FLUSH,
    RULE_HANDLE_IN_WORKER_PAYLOAD,
    RULE_NONSPAWN_CONTEXT,
    RULE_RELEASE_BEFORE_APPEND,
    RULE_RENAME_WITHOUT_FSYNC,
    RULE_SENSITIVE_ESCAPE,
    RULE_SENSITIVE_READ,
    RULE_SUMMARIES,
    RULE_SWALLOWED_APPEND_FAILURE,
    RULE_TAINTED_EXCEPTION,
    RULE_TAINTED_JOURNAL,
    RULE_TAINTED_LOG,
    RULE_TAINTED_SHARED_STATE,
    RULE_TRUE_ANSWER,
    RULE_UNCHECKPOINTED_LOOP,
    RULE_UNGUARDED_GUARDED_STATE,
    RULE_UNORDERED_ACCUMULATION,
    RULE_UNORDERED_ITERATION,
    RULE_UNSEEDED_RNG,
    RULE_UNSYNCHRONIZED_SHARED_MUTATION,
    RULE_WALLCLOCK_READ,
    SCHEMA_VERSION,
    Finding,
    Frame,
    Report,
    expand_rule_selection,
)
from .forksafety import ForkSafetyConfig, check_forksafety
from .leaks import LeakConfig, check_leaks
from .ordering import OrderingConfig, check_ordering
from .purity import EffectConfig, EffectEngine, EffectSummary
from .sarif import report_to_sarif, report_to_sarif_json
from .simulatability import (
    DEFAULT_CONFIG,
    AnalysisConfig,
    SensitiveClass,
    check_package,
    default_package_dir,
    find_auditor_classes,
)
from .taintflow import TaintConfig, TaintEngine, TaintSummary

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "AtomicityConfig",
    "ConcurrencyConfig",
    "DEFAULT_CONFIG",
    "DeterminismConfig",
    "EffectConfig",
    "EffectEngine",
    "EffectSummary",
    "EscapeConfig",
    "EscapeEngine",
    "Finding",
    "ForkSafetyConfig",
    "Frame",
    "LeakConfig",
    "OrderingConfig",
    "Report",
    "RULE_ACQUIRE_WITHOUT_RELEASE",
    "RULE_BLOCKING_UNDER_LOCK",
    "RULE_EFFECTFUL_WORKER_FN",
    "RULE_FAMILIES",
    "RULE_FSYNC_WITHOUT_FLUSH",
    "RULE_HANDLE_IN_WORKER_PAYLOAD",
    "RULE_NONSPAWN_CONTEXT",
    "RULE_RELEASE_BEFORE_APPEND",
    "RULE_RENAME_WITHOUT_FSYNC",
    "RULE_SENSITIVE_ESCAPE",
    "RULE_SENSITIVE_READ",
    "RULE_SUMMARIES",
    "RULE_SWALLOWED_APPEND_FAILURE",
    "RULE_TAINTED_EXCEPTION",
    "RULE_TAINTED_JOURNAL",
    "RULE_TAINTED_LOG",
    "RULE_TAINTED_SHARED_STATE",
    "RULE_TRUE_ANSWER",
    "RULE_UNCHECKPOINTED_LOOP",
    "RULE_UNGUARDED_GUARDED_STATE",
    "RULE_UNORDERED_ACCUMULATION",
    "RULE_UNORDERED_ITERATION",
    "RULE_UNSEEDED_RNG",
    "RULE_UNSYNCHRONIZED_SHARED_MUTATION",
    "RULE_WALLCLOCK_READ",
    "SCHEMA_VERSION",
    "SensitiveClass",
    "TaintConfig",
    "TaintEngine",
    "TaintSummary",
    "active_rules",
    "analyze_package",
    "apply_baseline",
    "check_atomics",
    "check_concurrency",
    "check_determinism",
    "check_forksafety",
    "check_leaks",
    "check_ordering",
    "check_package",
    "default_package_dir",
    "expand_rule_selection",
    "find_auditor_classes",
    "load_baseline",
    "report_to_sarif",
    "report_to_sarif_json",
    "write_baseline",
]
