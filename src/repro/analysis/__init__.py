"""Static analysis tooling enforcing the paper's safety contracts.

Four rule families prove the serving invariants at lint time:

* **SIM** (:mod:`~repro.analysis.simulatability`) — auditor decision paths
  never touch the sensitive data (paper §2.2);
* **DET** (:mod:`~repro.analysis.determinism`) — decision/sampler paths
  are bitwise deterministic: no unseeded RNG, wall-clock reads, or
  set/dict-iteration-order dependence;
* **WAL** (:mod:`~repro.analysis.ordering`) — every released answer is
  dominated by an audit-journal append (fail-closed ordering);
* **BUD** (:mod:`~repro.analysis.ordering`) — sampler/chain loops
  checkpoint their budget so exhaustion can cancel them cooperatively.

Run the SIM-only legacy entry point or the full analysis as a library::

    from repro.analysis import analyze_package, check_package
    assert check_package().ok                      # SIM only
    assert analyze_package().ok                    # SIM+DET+WAL+BUD

or from the shell (non-zero exit on undocumented violations)::

    repro-audit lint --select DET,WAL --format sarif

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and pragma syntax.
"""

from .baseline import apply_baseline, load_baseline, write_baseline
from .determinism import DeterminismConfig, check_determinism
from .driver import active_rules, analyze_package
from .findings import (
    ALL_RULES,
    RULE_FAMILIES,
    RULE_RELEASE_BEFORE_APPEND,
    RULE_SENSITIVE_ESCAPE,
    RULE_SENSITIVE_READ,
    RULE_SUMMARIES,
    RULE_SWALLOWED_APPEND_FAILURE,
    RULE_TRUE_ANSWER,
    RULE_UNCHECKPOINTED_LOOP,
    RULE_UNORDERED_ACCUMULATION,
    RULE_UNORDERED_ITERATION,
    RULE_UNSEEDED_RNG,
    RULE_WALLCLOCK_READ,
    SCHEMA_VERSION,
    Finding,
    Frame,
    Report,
    expand_rule_selection,
)
from .ordering import OrderingConfig, check_ordering
from .purity import EffectConfig, EffectEngine, EffectSummary
from .sarif import report_to_sarif, report_to_sarif_json
from .simulatability import (
    DEFAULT_CONFIG,
    AnalysisConfig,
    SensitiveClass,
    check_package,
    default_package_dir,
    find_auditor_classes,
)

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "DEFAULT_CONFIG",
    "DeterminismConfig",
    "EffectConfig",
    "EffectEngine",
    "EffectSummary",
    "Finding",
    "Frame",
    "OrderingConfig",
    "Report",
    "RULE_FAMILIES",
    "RULE_RELEASE_BEFORE_APPEND",
    "RULE_SENSITIVE_ESCAPE",
    "RULE_SENSITIVE_READ",
    "RULE_SUMMARIES",
    "RULE_SWALLOWED_APPEND_FAILURE",
    "RULE_TRUE_ANSWER",
    "RULE_UNCHECKPOINTED_LOOP",
    "RULE_UNORDERED_ACCUMULATION",
    "RULE_UNORDERED_ITERATION",
    "RULE_UNSEEDED_RNG",
    "RULE_WALLCLOCK_READ",
    "SCHEMA_VERSION",
    "SensitiveClass",
    "active_rules",
    "analyze_package",
    "apply_baseline",
    "check_determinism",
    "check_ordering",
    "check_package",
    "default_package_dir",
    "expand_rule_selection",
    "find_auditor_classes",
    "load_baseline",
    "report_to_sarif",
    "report_to_sarif_json",
    "write_baseline",
]
