"""FORK rules: process/fork safety for the experiment fan-out paths.

``repro.utility.parallel`` ships trials across worker processes; the
ROADMAP's multicore ensembles will ship sampler chains the same way.  The
classic fork bugs are all about *duplicated state*: a forked child inherits
open file descriptors (two processes appending to one WAL corrupt it), a
copied ``np.random.Generator`` (every child draws the same stream), and
held locks (instant deadlock).  These rules reject the patterns statically,
using the worker-submission sites collected by
:mod:`repro.analysis.escape`:

* ``FORK001`` — a live WAL/journal/file handle or RNG generator flows into
  a worker payload (``Pool.map`` iterable, ``submit``/``Thread`` args,
  ``initargs``).  Workers must *reconstruct* handles and derive generators
  from integer seeds, never receive them;
* ``FORK002`` — the worker function itself (resolved through the call
  graph) has an effect summary that appends to the audit journal or draws
  randomness not derived from an explicit seed: per-process copies of the
  journal or the RNG stream silently diverge;
* ``FORK003`` — multiprocessing without an explicit ``spawn`` context:
  bare ``multiprocessing.Pool``/``Process``, ``get_context()`` with no or
  a non-spawn argument, or ``set_start_method`` to fork.  On Linux the
  default start method is ``fork``, which duplicates every lock and
  handle in the parent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from .callgraph import Resolver
from .escape import EscapeEngine, WorkerSubmission
from .findings import (
    RULE_EFFECTFUL_WORKER_FN,
    RULE_HANDLE_IN_WORKER_PAYLOAD,
    RULE_NONSPAWN_CONTEXT,
    Finding,
    Frame,
)
from .modindex import ClassInfo, PackageIndex
from .purity import EffectEngine, attr_text, dotted_callee, iter_calls


@dataclass
class ForkSafetyConfig:
    """Vocabulary of the FORK rules."""

    #: package classes that wrap an OS-level handle (fd, file, socket)
    handle_classes: Tuple[str, ...] = (
        "repro.persistence.AuditJournal",
        "repro.resilience.wal.WriteAheadLog",
        "repro.resilience.checkpoint.CheckpointedWal",
    )
    #: factory calls binding a handle to a local
    handle_factories: FrozenSet[str] = frozenset({"open", "io.open"})
    #: factory calls binding a live RNG generator to a local
    rng_factories: FrozenSet[str] = frozenset({
        "numpy.random.default_rng", "numpy.random.RandomState",
        "random.Random", "repro.rng.as_generator", "repro.rng.spawn",
    })
    #: payload name/attribute suffixes that denote a handle by convention
    handle_name_suffixes: Tuple[str, ...] = ("wal", "journal", "handle")


DEFAULT_FORKSAFETY_CONFIG = ForkSafetyConfig()


class _ForkChecker:
    def __init__(self, index: PackageIndex, resolver: Resolver,
                 engine: EffectEngine, escape: EscapeEngine,
                 config: ForkSafetyConfig) -> None:
        self.index = index
        self.resolver = resolver
        self.engine = engine
        self.escape = escape
        self.config = config
        self.findings: List[Finding] = []

    # -- FORK001 --------------------------------------------------------

    def check_payloads(self, sub: WorkerSubmission) -> None:
        if sub.env is None:
            return
        handle_locals, rng_locals = self._tracked_locals(sub)
        for expr in sub.payload:
            for leaf in EscapeEngine._leaf_exprs(expr):
                why = self._unsafe_reason(leaf, sub, handle_locals,
                                          rng_locals)
                if why is None:
                    continue
                self._emit(
                    RULE_HANDLE_IN_WORKER_PAYLOAD, sub, leaf,
                    sink=f"{why} in {sub.kind} payload",
                    message=f"worker payload captures {why}: forked/"
                            f"spawned workers duplicate its state "
                            f"(pass integer seeds or paths and "
                            f"reconstruct inside the worker)")

    def _tracked_locals(self, sub: WorkerSubmission
                        ) -> Tuple[Set[str], Set[str]]:
        """Locals of the enclosing function bound to handles/generators."""
        handles: Set[str] = set()
        rngs: Set[str] = set()
        node = sub.enclosing_fn
        if node is None:
            return handles, rngs
        for stmt in ast.walk(node):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)):
                continue
            name = stmt.targets[0].id
            call = stmt.value
            dotted = dotted_callee(call.func, self.index, sub.module)
            if dotted is None and isinstance(call.func, ast.Name):
                dotted = call.func.id
            if dotted in self.config.handle_factories:
                handles.add(name)
            elif dotted in self.config.rng_factories:
                rngs.add(name)
        return handles, rngs

    def _unsafe_reason(self, leaf: ast.expr, sub: WorkerSubmission,
                       handle_locals: Set[str],
                       rng_locals: Set[str]) -> Optional[str]:
        if isinstance(leaf, ast.Name):
            if leaf.id in handle_locals:
                return f"open handle {leaf.id!r}"
            if leaf.id in rng_locals:
                return f"live RNG generator {leaf.id!r}"
        cls = self.resolver.infer_type(leaf, sub.env)
        if cls is not None and cls.qualname in self.config.handle_classes:
            return f"a live {cls.name} handle"
        text = attr_text(leaf)
        if text is not None and "." in text:
            tail = text.rsplit(".", 1)[-1].lower()
            if any(tail.endswith(sfx)
                   for sfx in self.config.handle_name_suffixes):
                return f"handle-like attribute {text!r}"
        return None

    # -- FORK002 --------------------------------------------------------

    def check_worker_fn(self, sub: WorkerSubmission) -> None:
        if sub.fn_node is None:
            return
        summary = self.engine.summary_of(sub.fn_node)
        name = sub.fn_qualname or "<worker>"
        if summary.appends_journal:
            self._emit(
                RULE_EFFECTFUL_WORKER_FN, sub, sub.fn_expr or sub.call,
                sink=f"worker {name} appends to the journal",
                message=f"worker function {name} (transitively) appends "
                        f"to the audit journal/WAL: per-process handles "
                        f"interleave appends and corrupt the log — "
                        f"journal in the parent, return results instead")
        if self.escape.draws_unseeded(sub.fn_node):
            self._emit(
                RULE_EFFECTFUL_WORKER_FN, sub, sub.fn_expr or sub.call,
                sink=f"worker {name} draws unseeded randomness",
                message=f"worker function {name} (transitively) draws "
                        f"randomness not derived from an explicit seed: "
                        f"forked children replay identical streams and "
                        f"spawned children diverge from the serial path")

    # -- FORK003 --------------------------------------------------------

    def check_contexts(self, module: str, node, self_class) -> None:
        env = self.resolver.param_env(module, node, self_class=self_class)
        for call in iter_calls(node):
            dotted = dotted_callee(call.func, self.index, module)
            attr = call.func.attr if isinstance(call.func, ast.Attribute) \
                else None
            if dotted in ("multiprocessing.Pool", "multiprocessing.Process"):
                self._emit_at(
                    RULE_NONSPAWN_CONTEXT, module, call,
                    sink=f"{dotted} in {node.name}()",
                    message=f"{dotted} uses the platform default start "
                            f"method (fork on Linux): use "
                            f"multiprocessing.get_context('spawn')",
                    self_class=self_class, method=node.name)
                continue
            if (dotted == "multiprocessing.get_context"
                    or attr == "get_context"):
                method = self._start_method_arg(call)
                if method == "spawn":
                    continue
                shown = "no argument" if method is None else repr(method)
                self._emit_at(
                    RULE_NONSPAWN_CONTEXT, module, call,
                    sink=f"get_context({shown}) in {node.name}()",
                    message=f"get_context({shown}) selects a non-spawn "
                            f"start method: forked children inherit "
                            f"locks, RNG state, and open WAL handles",
                    self_class=self_class, method=node.name)
                continue
            if attr == "set_start_method":
                method = self._start_method_arg(call)
                if method != "spawn":
                    self._emit_at(
                        RULE_NONSPAWN_CONTEXT, module, call,
                        sink=f"set_start_method in {node.name}()",
                        message="set_start_method to a non-spawn method: "
                                "forked children inherit locks, RNG "
                                "state, and open WAL handles",
                        self_class=self_class, method=node.name)

    @staticmethod
    def _start_method_arg(call: ast.Call) -> Optional[str]:
        if call.args and isinstance(call.args[0], ast.Constant):
            value = call.args[0].value
            return value if isinstance(value, str) else None
        for kw in call.keywords:
            if kw.arg == "method" and isinstance(kw.value, ast.Constant):
                value = kw.value.value
                return value if isinstance(value, str) else None
        return None

    # -- emission -------------------------------------------------------

    def _emit(self, rule: str, sub: WorkerSubmission, node: ast.AST,
              sink: str, message: str) -> None:
        method = sub.enclosing.rsplit(".", 1)[-1]
        self._emit_at(rule, sub.module, node, sink, message,
                      self_class=sub.enclosing_class, method=method)

    def _emit_at(self, rule: str, module: str, node: ast.AST, sink: str,
                 message: str, self_class: Optional[ClassInfo],
                 method: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        pragma = self.index.pragma_for(module, rule, line)
        entry_class = self_class.name if self_class is not None else ""
        frame = Frame(
            function=f"{entry_class}.{method}" if entry_class else method,
            module=module,
            file=self.index.relpath(module),
            line=line,
        )
        self.findings.append(Finding(
            rule=rule,
            message=message,
            file=self.index.relpath(module),
            line=line,
            col=col,
            entry_class=entry_class,
            entry_method=method,
            entry_module=module,
            sink=sink,
            chain=(frame,),
            pragma_reason=pragma,
        ))


def check_forksafety(index: PackageIndex, resolver: Resolver,
                     engine: EffectEngine, escape: EscapeEngine,
                     config: Optional[ForkSafetyConfig] = None,
                     rules: Optional[Set[str]] = None,
                     ) -> Tuple[List[Finding], int]:
    """Run the FORK rules: payload/worker checks per submission site,
    context checks per function."""
    config = config or DEFAULT_FORKSAFETY_CONFIG
    checker = _ForkChecker(index, resolver, engine, escape, config)
    for sub in escape.submissions:
        checker.check_payloads(sub)
        checker.check_worker_fn(sub)
    checked = 0
    for mod in sorted(index.modules.values(), key=lambda m: m.name):
        for node in mod.functions.values():
            checker.check_contexts(mod.name, node, None)
            checked += 1
        for cls in mod.classes.values():
            for node in cls.methods.values():
                checker.check_contexts(mod.name, node, cls)
                checked += 1
    findings = checker.findings
    if rules is not None:
        findings = [f for f in findings if f.rule in rules]
    return findings, checked
