"""Call and type resolution over a :class:`~repro.analysis.modindex.PackageIndex`.

The analyzer needs just enough type inference to follow decision paths
through the package: ``self`` methods (with dynamic dispatch resolved
against the concrete auditor class being analysed), module-level functions
reached directly or through imports, constructor calls, and methods invoked
on instance attributes or locals whose class is inferable from constructor
assignments, parameter annotations, or return annotations.

Everything here is best-effort and sound-by-silence: an unresolvable call is
simply not followed (the taint rules separately flag sensitive values that
escape into such calls).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .modindex import ClassInfo, FunctionNode, PackageIndex


@dataclass
class TypeEnv:
    """Types visible while scanning one function body."""

    module: str
    self_class: Optional[ClassInfo] = None      #: concrete class bound to self
    self_name: Optional[str] = None             #: usually ``self``
    locals: Dict[str, ClassInfo] = field(default_factory=dict)


@dataclass
class ResolvedCall:
    """Best-effort resolution of one call site."""

    qualname: str                               #: fully-qualified dotted name
    node: Optional[FunctionNode] = None
    module: Optional[str] = None                #: module defining ``node``
    self_class: Optional[ClassInfo] = None      #: receiver class for methods
    constructed: Optional[ClassInfo] = None     #: class when a constructor


class Resolver:
    """Hierarchy, type, and call resolution for one package index."""

    def __init__(self, index: PackageIndex) -> None:
        self.index = index
        self._mro_cache: Dict[str, List[ClassInfo]] = {}
        self._attr_cache: Dict[str, Dict[str, ClassInfo]] = {}

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------

    def direct_bases(self, cls: ClassInfo) -> List[ClassInfo]:
        out: List[ClassInfo] = []
        for base in cls.bases:
            resolved = self._resolve_classname(cls.module, base)
            if resolved is not None:
                out.append(resolved)
        return out

    def mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """Approximate linearisation: the class, then DFS over bases."""
        cached = self._mro_cache.get(cls.qualname)
        if cached is not None:
            return cached
        order: List[ClassInfo] = []
        seen = set()

        def visit(c: ClassInfo) -> None:
            if c.qualname in seen:
                return
            seen.add(c.qualname)
            order.append(c)
            for base in self.direct_bases(c):
                visit(base)

        visit(cls)
        self._mro_cache[cls.qualname] = order
        return order

    def is_subclass_of(self, cls: ClassInfo, base_qualname: str) -> bool:
        return any(c.qualname == base_qualname for c in self.mro(cls))

    def find_method(self, cls: ClassInfo, name: str
                    ) -> Optional[tuple]:
        """``(defining_class, node)`` for ``name`` through the MRO."""
        for c in self.mro(cls):
            node = c.methods.get(name)
            if node is not None:
                return c, node
        return None

    # ------------------------------------------------------------------
    # Annotations and instance attributes
    # ------------------------------------------------------------------

    def _resolve_classname(self, module: str,
                           text: str) -> Optional[ClassInfo]:
        """Resolve a (possibly dotted / quoted / Optional[]) name to a class."""
        text = text.strip().strip("\"'")
        if text.startswith("Optional[") and text.endswith("]"):
            text = text[len("Optional["):-1].strip()
        if text.endswith("| None"):
            text = text[:-len("| None")].strip()
        if "[" in text or not text:
            return None
        if "." in text:
            resolved = self.index.resolve_dotted(text)
            if resolved is None:
                # maybe ``alias.Class`` where alias is an imported module
                head, _, cls_name = text.rpartition(".")
                target = self.index.qualify(module, head.split(".")[0])
                if target is None:
                    return None
                dotted = text.replace(head.split(".")[0], target, 1)
                resolved = self.index.resolve_dotted(dotted)
                if resolved is None:
                    return None
            mod_name, symbol = resolved
            if not symbol:
                return None
            return self.index.modules[mod_name].classes.get(symbol)
        return self.index.lookup_class(module, text)

    def _annotation_class(self, module: str,
                          annotation: Optional[ast.expr]
                          ) -> Optional[ClassInfo]:
        if annotation is None:
            return None
        try:
            text = ast.unparse(annotation)
        except Exception:  # pragma: no cover - exotic annotations
            return None
        return self._resolve_classname(module, text)

    def param_env(self, module: str, node: FunctionNode,
                  self_class: Optional[ClassInfo] = None) -> TypeEnv:
        """A TypeEnv seeded from the function's parameter annotations."""
        env = TypeEnv(module=module, self_class=self_class)
        args = node.args
        params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if self_class is not None and params:
            env.self_name = params[0].arg
            params = params[1:]
        for param in params:
            cls = self._annotation_class(module, param.annotation)
            if cls is not None:
                env.locals[param.arg] = cls
        return env

    def instance_attr_types(self, cls: ClassInfo) -> Dict[str, ClassInfo]:
        """Instance attribute -> class, merged across the MRO.

        Sources: ``self.x = SomeClass(...)`` (or any expression with an
        inferable type) in any method, ``self.x: SomeClass`` annotations,
        and class-level annotations.
        """
        cached = self._attr_cache.get(cls.qualname)
        if cached is not None:
            return cached
        self._attr_cache[cls.qualname] = {}  # cycle guard
        merged: Dict[str, ClassInfo] = {}
        for c in reversed(self.mro(cls)):    # subclasses override bases
            for attr, text in c.attr_types.items():
                resolved = self._resolve_classname(c.module, text)
                if resolved is not None:
                    merged[attr] = resolved
            for method in c.methods.values():
                env = self.param_env(c.module, method, self_class=c)
                for stmt in ast.walk(method):
                    target: Optional[ast.expr] = None
                    value: Optional[ast.expr] = None
                    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                        target, value = stmt.targets[0], stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        target = stmt.target
                        ann = self._annotation_class(c.module, stmt.annotation)
                        if (ann is not None
                                and isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == env.self_name):
                            merged[target.attr] = ann
                        continue
                    if (target is None or value is None
                            or not isinstance(target, ast.Attribute)
                            or not isinstance(target.value, ast.Name)
                            or target.value.id != env.self_name):
                        continue
                    inferred = self.infer_type(value, env)
                    if inferred is not None:
                        merged[target.attr] = inferred
        self._attr_cache[cls.qualname] = merged
        return merged

    # ------------------------------------------------------------------
    # Expression typing
    # ------------------------------------------------------------------

    def _property_return_class(self, cls: ClassInfo,
                               name: str) -> Optional[ClassInfo]:
        """The annotated return class of a ``@property`` accessor, if any."""
        hit = self.find_method(cls, name)
        if hit is None:
            return None
        defining, node = hit
        for deco in getattr(node, "decorator_list", ()):
            text = None
            if isinstance(deco, ast.Name):
                text = deco.id
            elif isinstance(deco, ast.Attribute):
                text = deco.attr
            if text in ("property", "cached_property"):
                return self._annotation_class(defining.module, node.returns)
        return None

    def infer_type(self, expr: ast.expr, env: TypeEnv) -> Optional[ClassInfo]:
        """The class of ``expr``, when statically inferable."""
        if isinstance(expr, ast.Name):
            if env.self_name is not None and expr.id == env.self_name:
                return env.self_class
            return env.locals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.infer_type(expr.value, env)
            if base is not None:
                attr = self.instance_attr_types(base).get(expr.attr)
                if attr is not None:
                    return attr
                return self._property_return_class(base, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            resolved = self.resolve_call(expr.func, env)
            if resolved is None:
                return None
            if resolved.constructed is not None:
                return resolved.constructed
            if resolved.node is not None and resolved.module is not None:
                ret = self._annotation_class(resolved.module,
                                             resolved.node.returns)
                if ret is not None:
                    return ret
            # ``x.copy()`` conventionally returns the receiver's class.
            if (resolved.self_class is not None
                    and resolved.qualname.endswith(".copy")):
                return resolved.self_class
            return None
        if isinstance(expr, ast.IfExp):
            return (self.infer_type(expr.body, env)
                    or self.infer_type(expr.orelse, env))
        return None

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------

    def resolve_call(self, func: ast.expr,
                     env: TypeEnv) -> Optional[ResolvedCall]:
        """Resolve the callee expression of a Call node."""
        if isinstance(func, ast.Name):
            cls = self.index.lookup_class(env.module, func.id)
            if cls is not None:
                hit = self.find_method(cls, "__init__")
                if hit is not None:
                    defining, node = hit
                    return ResolvedCall(
                        qualname=f"{cls.qualname}.__init__", node=node,
                        module=defining.module, self_class=cls,
                        constructed=cls)
                return ResolvedCall(qualname=cls.qualname, constructed=cls)
            found = self.index.lookup_function(env.module, func.id)
            if found is not None:
                mod_name, node = found
                return ResolvedCall(qualname=f"{mod_name}.{node.name}",
                                    node=node, module=mod_name)
            target = self.index.qualify(env.module, func.id)
            if target is not None:
                return ResolvedCall(qualname=target)
            return None
        if isinstance(func, ast.Attribute):
            receiver = self.infer_type(func.value, env)
            if receiver is not None:
                hit = self.find_method(receiver, func.attr)
                qualname = f"{receiver.qualname}.{func.attr}"
                if hit is not None:
                    defining, node = hit
                    return ResolvedCall(qualname=qualname, node=node,
                                        module=defining.module,
                                        self_class=receiver)
                return ResolvedCall(qualname=qualname, self_class=receiver)
            # module-attribute calls: ``module.func(...)``
            if isinstance(func.value, ast.Name):
                target = self.index.qualify(env.module, func.value.id)
                if target is not None:
                    dotted = f"{target}.{func.attr}"
                    resolved = self.index.resolve_dotted(dotted)
                    if resolved is not None:
                        mod_name, symbol = resolved
                        node = self.index.modules[mod_name].functions.get(
                            symbol)
                        if node is not None:
                            return ResolvedCall(qualname=dotted, node=node,
                                                module=mod_name)
                        cls = self.index.modules[mod_name].classes.get(symbol)
                        if cls is not None:
                            hit = self.find_method(cls, "__init__")
                            if hit is not None:
                                defining, node = hit
                                return ResolvedCall(
                                    qualname=f"{dotted}.__init__", node=node,
                                    module=defining.module, self_class=cls,
                                    constructed=cls)
                            return ResolvedCall(qualname=dotted,
                                                constructed=cls)
                        if "." in symbol:
                            # class attribute: ``SomeClass.method(...)``
                            cls_name, meth = symbol.split(".", 1)
                            cls = self.index.modules[mod_name].classes.get(
                                cls_name)
                            if cls is not None and "." not in meth:
                                hit = self.find_method(cls, meth)
                                if hit is not None:
                                    defining, node = hit
                                    return ResolvedCall(
                                        qualname=dotted, node=node,
                                        module=defining.module,
                                        self_class=cls)
                    return ResolvedCall(qualname=dotted)
            return None
        return None
