"""ATOM rules: the atomic-durability protocol around rename.

WAL001 proves *ordering* (append before release); these rules prove the
append itself is durable.  The POSIX recipe the checkpoint/WAL layer uses
(``_write_snapshot``/``_commit_manifest`` in
:mod:`repro.resilience.checkpoint`) is: write a temp file → ``flush()`` →
``fsync(fd)`` → ``os.replace(tmp, final)`` → fsync the parent directory.
Skipping any step leaves a crash window — a rename made durable before its
contents (data loss), or a rename the directory never learned about
(the manifest points at nothing after power loss).

* ``ATOM001`` — an ``os.rename``/``os.replace`` whose arguments look like
  durability artifacts (tmp/manifest/snapshot/segment/WAL paths) that is
  not **dominated** by a file fsync (:func:`must_pass_before`) or not
  **post-dominated** by a parent-directory fsync
  (:func:`must_pass_after`).  An fsync behind an explicit policy gate
  (``if self._fsync: …``) counts: the gate is the operator's documented
  opt-out, so the *header* satisfies the protocol on both arms;
* ``ATOM002`` — ``os.fsync(handle.fileno())`` not dominated by a
  ``flush()`` on the same handle: Python's buffered writer may still hold
  the tail of the record, so the kernel durably persists a torn write.

Both rules are flow-sensitive over the per-function CFG, with fsync
effects resolved transitively through the escape pass (a helper like
``fsync_directory`` counts wherever it is reached from).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from .callgraph import Resolver, TypeEnv
from .cfg import CFG, build_cfg, must_pass_after, must_pass_before, \
    stmt_expr_nodes
from .escape import EscapeEngine
from .findings import (
    RULE_FSYNC_WITHOUT_FLUSH,
    RULE_RENAME_WITHOUT_FSYNC,
    Finding,
    Frame,
)
from .modindex import ClassInfo, FunctionNode, PackageIndex
from .purity import EffectEngine, attr_text, dotted_callee


@dataclass
class AtomicityConfig:
    """Scope of the ATOM rules."""

    rename_calls: FrozenSet[str] = frozenset({"os.rename", "os.replace"})
    #: path-text tokens marking a rename as a durability artifact
    artifact_tokens: Tuple[str, ...] = (
        "tmp", "manifest", "snapshot", "segment", "wal", "journal",
        "ckpt", "checkpoint",
    )
    #: ``if <test mentioning one of these>:`` gates an fsync by policy
    fsync_gate_tokens: Tuple[str, ...] = ("fsync", "sync", "durable")
    fsync_calls: FrozenSet[str] = frozenset({"os.fsync", "os.fdatasync"})
    dir_fsync_names: FrozenSet[str] = frozenset({"fsync_directory"})


DEFAULT_ATOMICITY_CONFIG = AtomicityConfig()


class _AtomicsChecker:
    def __init__(self, index: PackageIndex, resolver: Resolver,
                 engine: EffectEngine, escape: EscapeEngine,
                 config: AtomicityConfig) -> None:
        self.index = index
        self.resolver = resolver
        self.engine = engine
        self.escape = escape
        self.config = config
        self.findings: List[Finding] = []

    # -- classification -------------------------------------------------

    def _call_dotted(self, call: ast.Call, module: str) -> Optional[str]:
        return dotted_callee(call.func, self.index, module)

    def _is_artifact_rename(self, call: ast.Call, module: str) -> bool:
        if self._call_dotted(call, module) not in self.config.rename_calls:
            return False
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            try:
                text = ast.unparse(arg).lower()
            except Exception:  # pragma: no cover - exotic expressions
                continue
            if any(token in text for token in self.config.artifact_tokens):
                return True
        return False

    def _is_file_fsync(self, call: ast.Call, module: str,
                       env: TypeEnv) -> bool:
        if self._call_dotted(call, module) in self.config.fsync_calls:
            return True
        name = None
        if isinstance(call.func, ast.Name):
            name = call.func.id
        elif isinstance(call.func, ast.Attribute):
            name = call.func.attr
        if name in self.config.dir_fsync_names:
            return True
        try:
            resolved = self.resolver.resolve_call(call.func, env)
        except RecursionError:  # pragma: no cover - pathological
            resolved = None
        return (resolved is not None
                and self.escape.does_fsync(resolved.node))

    def _is_dir_fsync(self, call: ast.Call, module: str,
                      env: TypeEnv) -> bool:
        name = None
        if isinstance(call.func, ast.Name):
            name = call.func.id
        elif isinstance(call.func, ast.Attribute):
            name = call.func.attr
        if name in self.config.dir_fsync_names:
            return True
        try:
            resolved = self.resolver.resolve_call(call.func, env)
        except RecursionError:  # pragma: no cover - pathological
            resolved = None
        return (resolved is not None
                and self.escape.does_dir_fsync(resolved.node))

    def _gated_headers(self, graph: CFG, satisfied: Set[int]) -> Set[int]:
        """``if self._fsync:`` headers whose body fsyncs.

        The policy gate is an explicit opt-out, so the header itself
        (present on every path) satisfies the protocol for both arms.
        """
        out: Set[int] = set()
        for stmt in graph.statements():
            node = stmt.node
            if not (stmt.is_header and isinstance(node, ast.If)):
                continue
            try:
                test_text = ast.unparse(node.test).lower()
            except Exception:  # pragma: no cover
                continue
            if not any(token in test_text
                       for token in self.config.fsync_gate_tokens):
                continue
            body_ids = {id(child) for s in node.body
                        for child in ast.walk(s)}
            for other in graph.statements():
                if other.sid in satisfied and id(other.node) in body_ids:
                    out.add(stmt.sid)
                    break
        return out

    # -- per-function checks --------------------------------------------

    def check_function(self, module: str, node: FunctionNode,
                       self_class: Optional[ClassInfo]) -> None:
        env = self.resolver.param_env(module, node, self_class=self_class)
        renames: List[Tuple[int, ast.Call]] = []
        graph: Optional[CFG] = None
        has_rename = any(
            self._call_dotted(call, module) in self.config.rename_calls
            for call in self._all_calls(node))
        has_fsync = any(
            self._call_dotted(call, module) in self.config.fsync_calls
            for call in self._all_calls(node))
        if not has_rename and not has_fsync:
            return
        graph = build_cfg(node)
        file_fsync_sids: Set[int] = set()
        dir_fsync_sids: Set[int] = set()
        flush_receivers: List[Tuple[int, Optional[str]]] = []
        fsync_fileno: List[Tuple[int, ast.Call, Optional[str]]] = []
        for stmt in graph.statements():
            for call in stmt_expr_nodes(stmt, (ast.Call,)):
                if self._is_file_fsync(call, module, env):
                    file_fsync_sids.add(stmt.sid)
                if self._is_dir_fsync(call, module, env):
                    dir_fsync_sids.add(stmt.sid)
                if (isinstance(call.func, ast.Attribute)
                        and call.func.attr == "flush"):
                    flush_receivers.append(
                        (stmt.sid, attr_text(call.func.value)))
                if self._is_artifact_rename(call, module):
                    renames.append((stmt.sid, call))
                receiver = self._fsync_fileno_receiver(call, module)
                if receiver is not None:
                    fsync_fileno.append((stmt.sid, call, receiver))

        file_effects = file_fsync_sids | self._gated_headers(
            graph, file_fsync_sids)
        dir_effects = dir_fsync_sids | self._gated_headers(
            graph, dir_fsync_sids)

        for sid, call in renames:
            if not must_pass_before(graph, file_effects, sid):
                self._emit(
                    RULE_RENAME_WITHOUT_FSYNC, module, call,
                    sink=f"rename in {node.name}() without file fsync",
                    message="os.replace/os.rename of a durability artifact "
                            "is not dominated by an fsync of the written "
                            "file: a crash can publish a name whose "
                            "contents never reached disk",
                    self_class=self_class, method=node.name)
            elif not must_pass_after(graph, dir_effects, sid):
                self._emit(
                    RULE_RENAME_WITHOUT_FSYNC, module, call,
                    sink=f"rename in {node.name}() without directory fsync",
                    message="os.replace/os.rename of a durability artifact "
                            "is not followed by fsync of the parent "
                            "directory on every path: the rename itself "
                            "can be lost on power failure",
                    self_class=self_class, method=node.name)

        for sid, call, receiver in fsync_fileno:
            flush_sids = {fsid for fsid, frecv in flush_receivers
                          if frecv is None or receiver is None
                          or frecv == receiver}
            if not must_pass_before(graph, flush_sids, sid):
                self._emit(
                    RULE_FSYNC_WITHOUT_FLUSH, module, call,
                    sink=f"fsync({receiver}) in {node.name}() "
                         f"without flush",
                    message="os.fsync of a buffered handle is not "
                            "dominated by flush(): the kernel can "
                            "durably persist a torn record while the "
                            "tail sits in the userspace buffer",
                    self_class=self_class, method=node.name)

    @staticmethod
    def _all_calls(node: FunctionNode) -> List[ast.Call]:
        out: List[ast.Call] = []

        def visit(current: ast.AST) -> None:
            for child in ast.iter_child_nodes(current):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                if isinstance(child, ast.Call):
                    out.append(child)
                visit(child)

        visit(node)
        return out

    def _fsync_fileno_receiver(self, call: ast.Call,
                               module: str) -> Optional[str]:
        """The handle text of an ``os.fsync(x.fileno())`` call, if any."""
        if self._call_dotted(call, module) not in self.config.fsync_calls:
            return None
        if not call.args:
            return None
        arg = call.args[0]
        if (isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Attribute)
                and arg.func.attr == "fileno"):
            return attr_text(arg.func.value)
        return None

    # -- emission -------------------------------------------------------

    def _emit(self, rule: str, module: str, node: ast.AST, sink: str,
              message: str, self_class: Optional[ClassInfo],
              method: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        pragma = self.index.pragma_for(module, rule, line)
        entry_class = self_class.name if self_class is not None else ""
        frame = Frame(
            function=f"{entry_class}.{method}" if entry_class else method,
            module=module,
            file=self.index.relpath(module),
            line=line,
        )
        self.findings.append(Finding(
            rule=rule,
            message=message,
            file=self.index.relpath(module),
            line=line,
            col=col,
            entry_class=entry_class,
            entry_method=method,
            entry_module=module,
            sink=sink,
            chain=(frame,),
            pragma_reason=pragma,
        ))


def check_atomics(index: PackageIndex, resolver: Resolver,
                  engine: EffectEngine, escape: EscapeEngine,
                  config: Optional[AtomicityConfig] = None,
                  rules: Optional[Set[str]] = None,
                  ) -> Tuple[List[Finding], int]:
    """Run the ATOM rules over every function of the package."""
    config = config or DEFAULT_ATOMICITY_CONFIG
    checker = _AtomicsChecker(index, resolver, engine, escape, config)
    checked = 0
    for mod in sorted(index.modules.values(), key=lambda m: m.name):
        for node in mod.functions.values():
            checker.check_function(mod.name, node, None)
            checked += 1
        for cls in mod.classes.values():
            for node in cls.methods.values():
                checker.check_function(mod.name, node, cls)
                checked += 1
    findings = checker.findings
    if rules is not None:
        findings = [f for f in findings if f.rule in rules]
    return findings, checked
