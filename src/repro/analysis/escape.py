"""Escape/alias summaries for the CONC/FORK/ATOM rule families.

The concurrency and fork-safety rules need whole-package facts the CFG and
effect layers don't carry:

* **lock ownership** — which classes assign a ``threading.Lock`` (or
  RLock/Condition/Semaphore) to an instance attribute, and under which
  attribute names, so CONC001 knows which ``with self._lock:`` regions
  guard which state;
* **thread sharing** — which classes the analysis considers shared across
  threads: the config-declared serving-tier roots (the multi-user
  frontend, the engine, its LRU caches — mirroring how the DET family
  declares its sampler root modules), every lock-owning class, and any
  class whose instances are inferred to flow into a ``threading.Thread``
  target/args or a pool/executor payload;
* **worker submissions** — every call site that ships a callable plus a
  payload into another thread or process (``pool.map``/``submit``/
  ``apply_async``, ``Pool(initializer=…, initargs=…)``,
  ``threading.Thread(target=…, args=…)``, and the package's own
  ``run_trials``/``run_sweep`` dispatchers), with the worker function
  resolved through the call graph when possible;
* **transitive fsync / unseeded-draw bits** — does a function
  (transitively) call ``os.fsync`` / ``fsync_directory``, and does it draw
  randomness that is not derived from an explicit seed?  CONC003 uses the
  former to spot durability stalls under a lock; FORK002 uses the latter
  to reject workers that would duplicate RNG state across forks.

Like everything else in this package the pass is best-effort and
sound-by-silence: what cannot be resolved is simply not marked.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .callgraph import Resolver, TypeEnv
from .modindex import ClassInfo, FunctionNode, PackageIndex
from .purity import EffectEngine, attr_text, dotted_callee, iter_calls


@dataclass
class EscapeConfig:
    """Names driving the escape/alias pass."""

    #: constructors whose result is a lock-ish synchronisation primitive
    lock_factories: FrozenSet[str] = frozenset({
        "threading.Lock", "threading.RLock", "threading.Condition",
        "threading.Semaphore", "threading.BoundedSemaphore",
    })
    #: serving-tier classes shared across request threads by design.
    #: Declared, like DeterminismConfig.root_modules: the analysis then
    #: adds every lock-owning class and every class inferred to flow into
    #: a thread/worker submission.
    shared_root_classes: Tuple[str, ...] = (
        "repro.sdb.multiuser.MultiUserFrontend",
        "repro.sdb.engine.StatisticalDatabase",
        "repro.sdb.cache.LruCache",
    )
    #: pool/executor fan-out methods shipping (fn, payload) to workers
    dispatch_methods: FrozenSet[str] = frozenset({
        "map", "imap", "imap_unordered", "starmap", "apply", "apply_async",
        "map_async", "starmap_async",
    })
    #: receiver-name tokens that mark a dispatch receiver as a pool
    poolish_receivers: Tuple[str, ...] = ("pool", "executor")
    #: package-level dispatch helpers: first arg is the worker callable
    dispatch_functions: FrozenSet[str] = frozenset({
        "repro.utility.parallel.run_trials",
        "repro.utility.parallel.run_sweep",
        "repro.utility.parallel.estimate_denial_curve_parallel",
    })
    #: file-fsync primitives (the durable-write syscall)
    fsync_names: FrozenSet[str] = frozenset({"os.fsync", "os.fdatasync"})
    #: directory-fsync helpers (persist the rename itself)
    dir_fsync_names: FrozenSet[str] = frozenset({"fsync_directory"})


DEFAULT_ESCAPE_CONFIG = EscapeConfig()


@dataclass
class WorkerSubmission:
    """One call site shipping work to another thread or process."""

    module: str
    call: ast.Call
    kind: str                       #: pool-method | submit | thread |
    #: pool-init | dispatch-fn
    fn_expr: Optional[ast.expr]     #: the worker callable expression
    payload: List[ast.expr] = field(default_factory=list)
    fn_node: Optional[FunctionNode] = None   #: resolved worker, if any
    fn_qualname: Optional[str] = None
    enclosing: str = ""             #: qualname of the containing function
    enclosing_class: Optional[ClassInfo] = None
    enclosing_fn: Optional[FunctionNode] = None
    env: Optional[TypeEnv] = None


class EscapeEngine:
    """Computes the shared-state/worker-flow summaries for one index."""

    def __init__(self, index: PackageIndex, resolver: Resolver,
                 engine: EffectEngine,
                 config: Optional[EscapeConfig] = None) -> None:
        self.index = index
        self.resolver = resolver
        self.engine = engine
        self.config = config or DEFAULT_ESCAPE_CONFIG
        #: class qualname -> instance attribute names holding locks
        self.lock_attrs: Dict[str, Set[str]] = {}
        #: module name -> module-level names assigned a lock
        self.module_locks: Dict[str, Set[str]] = {}
        #: module name -> names assigned at module top level
        self.module_globals: Dict[str, Set[str]] = {}
        #: class qualnames the analysis marks as shared across threads
        self.shared_classes: Set[str] = set()
        self.submissions: List[WorkerSubmission] = []
        #: id(FunctionNode) of functions that run in a worker/thread
        self.worker_entry_ids: Set[int] = set()
        self._unseeded: Dict[int, bool] = {}
        self._fsync: Dict[int, bool] = {}
        self._dir_fsync: Dict[int, bool] = {}
        self._edges: Dict[int, Set[int]] = {}
        self._compute()

    # -- public queries -------------------------------------------------

    def owns_lock(self, cls: Optional[ClassInfo]) -> bool:
        return cls is not None and bool(self.lock_attrs.get(cls.qualname))

    def lock_attrs_of(self, cls: Optional[ClassInfo]) -> Set[str]:
        if cls is None:
            return set()
        return self.lock_attrs.get(cls.qualname, set())

    def is_shared_class(self, cls: Optional[ClassInfo]) -> bool:
        return cls is not None and cls.qualname in self.shared_classes

    def is_worker_entry(self, node: FunctionNode) -> bool:
        return id(node) in self.worker_entry_ids

    def draws_unseeded(self, node: Optional[FunctionNode]) -> bool:
        """Transitively draws randomness not derived from an explicit seed."""
        return node is not None and self._unseeded.get(id(node), False)

    def does_fsync(self, node: Optional[FunctionNode]) -> bool:
        """Transitively reaches an ``os.fsync``/``os.fdatasync`` call."""
        return node is not None and self._fsync.get(id(node), False)

    def does_dir_fsync(self, node: Optional[FunctionNode]) -> bool:
        """Transitively reaches a directory-fsync helper."""
        return node is not None and self._dir_fsync.get(id(node), False)

    # -- construction ---------------------------------------------------

    def _all_functions(self) -> List[Tuple[str, FunctionNode,
                                           Optional[ClassInfo]]]:
        out: List[Tuple[str, FunctionNode, Optional[ClassInfo]]] = []
        for mod in sorted(self.index.modules.values(), key=lambda m: m.name):
            for fn in mod.functions.values():
                out.append((mod.name, fn, None))
            for cls in mod.classes.values():
                for method in cls.methods.values():
                    out.append((mod.name, method, cls))
        return out

    def _compute(self) -> None:
        self._scan_module_level()
        functions = self._all_functions()
        for module, node, self_class in functions:
            env = self.resolver.param_env(module, node,
                                          self_class=self_class)
            self._scan_lock_attrs(module, node, self_class, env)
            self._scan_submissions(module, node, self_class, env)
            self._scan_primitive_bits(module, node, env)
        self._propagate_bits()
        self._resolve_workers()
        self._mark_shared_classes()

    def _scan_module_level(self) -> None:
        for mod in self.index.modules.values():
            globs: Set[str] = set()
            locks: Set[str] = set()
            for stmt in mod.tree.body:
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    targets, value = list(stmt.targets), stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    targets, value = [stmt.target], stmt.value
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    globs.add(target.id)
                    if (isinstance(value, ast.Call)
                            and dotted_callee(value.func, self.index,
                                              mod.name)
                            in self.config.lock_factories):
                        locks.add(target.id)
            self.module_globals[mod.name] = globs
            self.module_locks[mod.name] = locks

    def _scan_lock_attrs(self, module: str, node: FunctionNode,
                         self_class: Optional[ClassInfo],
                         env: TypeEnv) -> None:
        if self_class is None or env.self_name is None:
            return
        for stmt in ast.walk(node):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == env.self_name):
                continue
            if not isinstance(stmt.value, ast.Call):
                continue
            dotted = dotted_callee(stmt.value.func, self.index, module)
            if dotted in self.config.lock_factories:
                self.lock_attrs.setdefault(self_class.qualname,
                                           set()).add(target.attr)

    # -- worker submissions --------------------------------------------

    def _scan_submissions(self, module: str, node: FunctionNode,
                          self_class: Optional[ClassInfo],
                          env: TypeEnv) -> None:
        config = self.config
        qual = (f"{self_class.qualname}.{node.name}" if self_class
                else f"{module}.{node.name}")

        def record(call: ast.Call, kind: str, fn_expr: Optional[ast.expr],
                   payload: List[ast.expr]) -> None:
            self.submissions.append(WorkerSubmission(
                module=module, call=call, kind=kind, fn_expr=fn_expr,
                payload=payload, enclosing=qual,
                enclosing_class=self_class, enclosing_fn=node, env=env))

        for call in iter_calls(node):
            dotted = dotted_callee(call.func, self.index, module)
            # threading.Thread(target=fn, args=(...))
            if dotted == "threading.Thread":
                fn_expr = None
                payload: List[ast.expr] = []
                for kw in call.keywords:
                    if kw.arg == "target":
                        fn_expr = kw.value
                    elif kw.arg in ("args", "kwargs"):
                        payload.extend(self._tuple_items(kw.value))
                record(call, "thread", fn_expr, payload)
                continue
            # Pool(..., initializer=fn, initargs=(...)) — any Pool-ish ctor
            if self._is_pool_ctor(call, dotted):
                fn_expr = None
                payload = []
                for kw in call.keywords:
                    if kw.arg == "initializer":
                        fn_expr = kw.value
                    elif kw.arg == "initargs":
                        payload.extend(self._tuple_items(kw.value))
                if fn_expr is not None or payload:
                    record(call, "pool-init", fn_expr, payload)
                continue
            if isinstance(call.func, ast.Attribute):
                attr = call.func.attr
                receiver = (attr_text(call.func.value) or "").lower()
                root = receiver.rsplit(".", 1)[-1]
                poolish = any(token in root
                              for token in config.poolish_receivers)
                if attr == "submit" and call.args:
                    record(call, "submit", call.args[0], list(call.args[1:]))
                    continue
                if attr in config.dispatch_methods and poolish and call.args:
                    record(call, "pool-method", call.args[0],
                           list(call.args[1:]))
                    continue
            # run_trials(fn, ...) style package dispatchers
            resolved = None
            try:
                resolved = self.resolver.resolve_call(call.func, env)
            except RecursionError:  # pragma: no cover - pathological
                resolved = None
            qualname = resolved.qualname if resolved is not None else dotted
            if qualname in config.dispatch_functions and call.args:
                record(call, "dispatch-fn", call.args[0], [])

    @staticmethod
    def _tuple_items(expr: Optional[ast.expr]) -> List[ast.expr]:
        if isinstance(expr, (ast.Tuple, ast.List)):
            return list(expr.elts)
        return [expr] if expr is not None else []

    @staticmethod
    def _is_pool_ctor(call: ast.Call, dotted: Optional[str]) -> bool:
        if dotted is not None and dotted.rsplit(".", 1)[-1] == "Pool":
            return True
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "Pool":
            return True
        return isinstance(func, ast.Name) and func.id == "Pool"

    def _resolve_workers(self) -> None:
        for sub in self.submissions:
            fn_expr = sub.fn_expr
            if fn_expr is None or sub.env is None:
                continue
            resolved = None
            try:
                resolved = self.resolver.resolve_call(fn_expr, sub.env)
            except RecursionError:  # pragma: no cover - pathological
                resolved = None
            if resolved is not None and resolved.node is not None:
                sub.fn_node = resolved.node
                sub.fn_qualname = resolved.qualname
                self.worker_entry_ids.add(id(resolved.node))

    # -- shared classes -------------------------------------------------

    def _mark_shared_classes(self) -> None:
        for qualname in self.config.shared_root_classes:
            if qualname in self.index.classes:
                self.shared_classes.add(qualname)
        self.shared_classes.update(self.lock_attrs)
        # anything inferred to flow into a thread/worker payload is shared
        for sub in self.submissions:
            if sub.env is None:
                continue
            env = self._env_with_locals(sub.enclosing_fn, sub.env)
            for expr in sub.payload:
                for leaf in self._leaf_exprs(expr):
                    cls = self.resolver.infer_type(leaf, env)
                    if cls is not None and cls.qualname in self.index.classes:
                        self.shared_classes.add(cls.qualname)
            # a bound-method worker shares its receiver object
            if (sub.kind == "thread" and isinstance(sub.fn_expr,
                                                    ast.Attribute)):
                cls = self.resolver.infer_type(sub.fn_expr.value, env)
                if cls is not None:
                    self.shared_classes.add(cls.qualname)

    def _env_with_locals(self, node: Optional[FunctionNode],
                         env: TypeEnv) -> TypeEnv:
        """``env`` extended with ``name = Ctor()`` local bindings."""
        if node is None:
            return env
        enriched = TypeEnv(module=env.module, self_class=env.self_class)
        enriched.self_name = env.self_name
        enriched.locals.update(env.locals)
        for stmt in ast.walk(node):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)):
                continue
            cls = self.resolver.infer_type(stmt.value, env)
            if cls is not None:
                enriched.locals[stmt.targets[0].id] = cls
        return enriched

    @staticmethod
    def _leaf_exprs(expr: ast.expr) -> List[ast.expr]:
        """Names/attributes inside a payload expression (lists unpacked)."""
        out: List[ast.expr] = []
        for node in ast.walk(expr):
            if isinstance(node, (ast.Name, ast.Attribute)):
                out.append(node)
        return out

    # -- transitive bits ------------------------------------------------

    def _scan_primitive_bits(self, module: str, node: FunctionNode,
                             env: TypeEnv) -> None:
        config = self.config
        unseeded = False
        fsync = False
        dir_fsync = False
        edges: Set[int] = set()
        for call in iter_calls(node):
            facts = self.engine.call_facts(call, module, env)
            if facts.unseeded_rng is not None:
                unseeded = True
            dotted = facts.dotted
            if dotted in config.fsync_names:
                fsync = True
            callee_name = None
            if isinstance(call.func, ast.Name):
                callee_name = call.func.id
            elif isinstance(call.func, ast.Attribute):
                callee_name = call.func.attr
            if callee_name in config.dir_fsync_names:
                dir_fsync = True
                fsync = True
            if (facts.resolved is not None
                    and facts.resolved.node is not None):
                edges.add(id(facts.resolved.node))
        fid = id(node)
        self._unseeded[fid] = unseeded
        self._fsync[fid] = fsync
        self._dir_fsync[fid] = dir_fsync
        self._edges[fid] = edges

    def _propagate_bits(self) -> None:
        changed = True
        while changed:
            changed = False
            for fid, edges in self._edges.items():
                for callee in edges:
                    for table in (self._unseeded, self._fsync,
                                  self._dir_fsync):
                        if table.get(callee) and not table.get(fid):
                            table[fid] = True
                            changed = True
