"""One-dimensional boolean auditing (paper §7; Kleinberg et al. [22]).

The paper's discussion singles this case out: boolean sum auditing is
coNP-hard for arbitrary query sets, but when queries are one-dimensional
ranges over ordered records ("how many individuals are between the ages of
15 and 25") the problem is tractable — and restricting the query language
this way "may be realistic in some settings".

Records hold a boolean sensitive bit; queries are contiguous ranges
``[a, b]`` whose answer is the number of set bits.  In prefix-sum space
every answer is a difference constraint ``S_{b+1} - S_a = c`` joined with
the unit-step constraints ``0 <= S_{i+1} - S_i <= 1``; a bit is disclosed
exactly when only one of its two values stays feasible.
"""

from .range_counts import BooleanRangeAuditor, BooleanRangeLog

__all__ = ["BooleanRangeAuditor", "BooleanRangeLog"]
