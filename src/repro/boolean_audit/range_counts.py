"""Range-count auditing over boolean data via difference constraints.

State space: prefix sums ``S_0 = 0, S_1, ..., S_n`` with the unit-step
constraints ``0 <= S_{i+1} - S_i <= 1``; an answered range count
``count[a..b] = c`` adds the equality ``S_{b+1} - S_a = c``.  The system is
a classic difference-constraint graph: feasibility = no negative cycle, and
bit ``x_i`` is *possible* as value ``v`` iff pinning ``S_{i+1} - S_i = v``
stays feasible.

The [22] paper gives a linear-time algorithm; this implementation uses the
transparent Bellman-Ford formulation (``O(n * m)`` per feasibility check),
which the test suite validates against exhaustive enumeration — ample for
the workloads in the benches, and trivially swappable for the optimised
variant behind the same interface.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..exceptions import InconsistentAnswersError, InvalidQueryError
from ..types import AuditDecision, DenialReason

Edge = Tuple[int, int, int]  # S_v - S_u <= w  encoded as (u, v, w)


class BooleanRangeLog:
    """Answered range-count constraints over ``n`` boolean bits."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self._answers: List[Tuple[int, int, int]] = []  # (a, b, c)

    # ------------------------------------------------------------------
    # Constraint graph
    # ------------------------------------------------------------------

    def _edges(self, extra: Sequence[Edge] = ()) -> List[Edge]:
        edges: List[Edge] = []
        for i in range(self.n):
            edges.append((i, i + 1, 1))   # S_{i+1} - S_i <= 1
            edges.append((i + 1, i, 0))   # S_i - S_{i+1} <= 0
        for a, b, c in self._answers:
            edges.append((a, b + 1, c))   # S_{b+1} - S_a <= c
            edges.append((b + 1, a, -c))  # S_a - S_{b+1} <= -c
        edges.extend(extra)
        return edges

    def _feasible(self, extra: Sequence[Edge] = ()) -> bool:
        """Bellman-Ford negative-cycle test on the constraint graph."""
        edges = self._edges(extra)
        dist = [0] * (self.n + 1)  # virtual source at distance 0 to all
        for _ in range(self.n + 1):
            changed = False
            for u, v, w in edges:
                if dist[u] + w < dist[v]:
                    dist[v] = dist[u] + w
                    changed = True
            if not changed:
                return True
        # One more relaxation round detects a negative cycle.
        return not any(dist[u] + w < dist[v] for u, v, w in edges)

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    @property
    def answered(self) -> List[Tuple[int, int, int]]:
        """The recorded ``(a, b, count)`` triples."""
        return list(self._answers)

    def is_consistent(self, a: int, b: int, c: int) -> bool:
        """Whether ``count[a..b] = c`` fits the answered constraints."""
        self._validate(a, b)
        if not 0 <= c <= b - a + 1:
            return False
        return self._feasible([(a, b + 1, c), (b + 1, a, -c)])

    def record(self, a: int, b: int, c: int) -> None:
        """Append an answered query; raises if inconsistent."""
        if not self.is_consistent(a, b, c):
            raise InconsistentAnswersError(
                f"count[{a}..{b}] = {c} contradicts earlier answers"
            )
        self._answers.append((a, b, c))

    def possible_values(self, i: int) -> List[int]:
        """Which values bit ``x_i`` can still take (subset of {0, 1})."""
        if not 0 <= i < self.n:
            raise InvalidQueryError(f"bit {i} out of range")
        out = []
        for v in (0, 1):
            pin = [(i, i + 1, v), (i + 1, i, -v)]
            if self._feasible(pin):
                out.append(v)
        return out

    def disclosed_bits(self) -> Dict[int, int]:
        """Bits whose value is uniquely determined."""
        out: Dict[int, int] = {}
        for i in range(self.n):
            values = self.possible_values(i)
            if len(values) == 1:
                out[i] = values[0]
        return out

    def copy(self) -> "BooleanRangeLog":
        dup = BooleanRangeLog(self.n)
        dup._answers = list(self._answers)
        return dup

    def _validate(self, a: int, b: int) -> None:
        if not 0 <= a <= b < self.n:
            raise InvalidQueryError(f"bad range [{a}, {b}] for n={self.n}")


class BooleanRangeAuditor:
    """Online simulatable auditor for 1-d boolean range counts.

    Denies a range query iff *some* consistent answer would disclose a bit —
    the candidate answers are simply every count in ``0 .. b-a+1`` that is
    consistent with the past, so the check is exact (no Theorem 5 subtlety
    needed in the discrete setting).

    **A faithful negative result**: over boolean data the extreme counts
    (all-zero / all-one) are almost always consistent and disclose every bit
    in the range, so the simulatable classical auditor denies nearly
    everything.  This is precisely the discrete-data phenomenon that
    motivates the paper's *probabilistic* compromise notion; the module's
    utility-bearing workhorse is the offline engine
    (:class:`BooleanRangeLog`), which solves [22]'s actual problem —
    deciding what an answered log has already disclosed.  Pre-seeded
    queries (:meth:`preseed`) remain answerable forever, per the paper's §7
    important-query suggestion.
    """

    def __init__(self, bits: Sequence[int]):
        values = [int(v) for v in bits]
        if any(v not in (0, 1) for v in values):
            raise InvalidQueryError("bits must be 0/1")
        self._bits = values
        self.log = BooleanRangeLog(len(values))

    @property
    def n(self) -> int:
        """Number of boolean records."""
        return len(self._bits)

    def preseed(self, a: int, b: int) -> int:
        """Record a DBA-approved range count up front (paper §7).

        Raises :class:`InconsistentAnswersError` via the log if the
        pre-seeds contradict each other, and refuses pre-seeds that by
        themselves disclose a bit.
        """
        count = sum(self._bits[a:b + 1])
        trial = self.log.copy()
        trial.record(a, b, count)
        if trial.disclosed_bits():
            raise InvalidQueryError(
                f"pre-seed count[{a}..{b}] = {count} discloses a bit"
            )
        self.log.record(a, b, count)
        return count

    def audit_range(self, a: int, b: int) -> AuditDecision:
        """Decide on ``count[a..b]``; answer truthfully when safe."""
        self.log._validate(a, b)
        for c in range(0, b - a + 2):
            trial = self.log.copy()
            try:
                trial.record(a, b, c)
            except InconsistentAnswersError:
                continue
            if trial.disclosed_bits():
                # audit: LEAK001 -- c enumerates every count in 0..(b-a+1)
                # regardless of the data; the detail is simulatable
                return AuditDecision.deny(
                    DenialReason.FULL_DISCLOSURE,
                    f"a consistent count ({c}) would disclose a bit",
                )
        answer = sum(self._bits[a:b + 1])
        self.log.record(a, b, answer)
        return AuditDecision.answer(float(answer))
