"""Seedable random-number helpers.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`; this module centralises the coercion so
experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator, an ``int`` seeds a new
    generator, and an existing generator is passed through unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, n: int) -> list:
    """Derive ``n`` independent child generators from ``rng``.

    Used when an experiment fans out trials that must not share streams.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def random_subset(rng: np.random.Generator, n: int,
                  min_size: int = 1, max_size: Optional[int] = None) -> frozenset:
    """A uniformly random non-empty subset of ``range(n)``.

    When ``max_size`` is ``None`` the subset is uniform over all non-empty
    subsets (each element included with probability 1/2, resampled if empty) —
    the paper's "random query" model (footnote 6).  Otherwise the size is
    drawn uniformly from ``[min_size, max_size]`` and the members uniformly
    without replacement.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if max_size is None:
        while True:
            mask = rng.integers(0, 2, size=n).astype(bool)
            if mask.any():
                return frozenset(int(i) for i in np.flatnonzero(mask))
    max_size = min(max_size, n)
    min_size = max(1, min(min_size, max_size))
    size = int(rng.integers(min_size, max_size + 1))
    members = rng.choice(n, size=size, replace=False)
    return frozenset(int(i) for i in members)
