"""Seedable random-number helpers.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`; this module centralises the coercion so
experiments are reproducible end to end.

It also hosts the *batch-draw* utilities the vectorized samplers share
with their scalar reference counterparts.  NumPy's ``Generator`` fills
arrays element by element from the same bit stream that scalar calls
consume, so a block draw of ``k`` values is bitwise-identical to ``k``
successive scalar draws of the same kind (asserted by the test suite).
The samplers exploit this: both the vectorized and the scalar-reference
decision paths pre-draw identical blocks in a *canonical order* (all
direction draws, then all chord positions) and therefore replay
bitwise-identically from the same per-decision seed — the contract the
differential replay suite under ``tests/golden/`` locks in.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator, an ``int`` seeds a new
    generator, and an existing generator is passed through unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, n: int) -> list:
    """Derive ``n`` independent child generators from ``rng``.

    Used when an experiment fans out trials that must not share streams.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


# ----------------------------------------------------------------------
# Batch draws (shared by vectorized samplers and their scalar references)
# ----------------------------------------------------------------------

def direction_block(gen: np.random.Generator, steps: int,
                    dim: int) -> Tuple[np.ndarray, np.ndarray]:
    """``steps`` pre-normalised isotropic directions in ``R^dim``.

    Returns ``(unit, norms)`` where ``unit`` is ``(steps, dim)`` with each
    row ``z / |z|`` and ``norms`` the raw Gaussian norms (a zero norm marks
    a measure-zero degenerate row the caller must skip).  The Gaussian
    block consumes the stream exactly like ``steps`` successive
    ``standard_normal(dim)`` calls; the squared-norm reduction is a
    row-wise pairwise sum, which NumPy evaluates identically for a
    contiguous row and a standalone vector — so scalar and vectorized
    consumers see bitwise-identical directions.
    """
    z = gen.standard_normal((steps, dim))
    norms = np.sqrt((z * z).sum(axis=1))
    with np.errstate(divide="ignore", invalid="ignore"):
        unit = z / norms[:, None]
    return unit, norms


def uniform_block(gen: np.random.Generator, count: int) -> np.ndarray:
    """``count`` raw uniforms on ``[0, 1)``; block == successive scalars.

    Rescale with :func:`scale_uniform` to reproduce
    ``Generator.uniform(low, high)`` bitwise.
    """
    return gen.random(count)


def scale_uniform(u, low, high):
    """Map raw uniforms to ``[low, high)`` exactly as ``Generator.uniform``
    does (``low + (high - low) * u``), so pre-drawn blocks reproduce the
    scalar call bitwise."""
    return low + (high - low) * u


def integer_block(gen: np.random.Generator, bound: int,
                  count: int) -> np.ndarray:
    """``count`` draws from ``range(bound)``; block == successive scalars
    (Lemire rejection consumes the stream per element in fill order)."""
    return gen.integers(bound, size=count)


def choice_cdf(probs: np.ndarray) -> np.ndarray:
    """The cumulative distribution ``Generator.choice(..., p=probs)``
    builds internally (cumsum, then normalised by its last entry).

    Precomputing it once per node and sampling via
    :func:`choice_from_cdf` replays ``choice`` bitwise while skipping its
    per-call validation and cumsum — the coloring chain's hottest win.
    """
    cdf = np.asarray(probs, dtype=float).cumsum()
    cdf /= cdf[-1]
    return cdf


def choice_from_cdf(cdf: np.ndarray, u) -> np.ndarray:
    """Indices drawn from a precomputed CDF for raw uniforms ``u`` —
    bitwise-identical to ``Generator.choice(len(cdf), p=probs)`` fed the
    same uniforms."""
    return cdf.searchsorted(u, side="right")


def random_subset(rng: np.random.Generator, n: int,
                  min_size: int = 1, max_size: Optional[int] = None) -> frozenset:
    """A uniformly random non-empty subset of ``range(n)``.

    When ``max_size`` is ``None`` the subset is uniform over all non-empty
    subsets (each element included with probability 1/2, resampled if empty) —
    the paper's "random query" model (footnote 6).  Otherwise the size is
    drawn uniformly from ``[min_size, max_size]`` and the members uniformly
    without replacement.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if max_size is None:
        while True:
            mask = rng.integers(0, 2, size=n).astype(bool)
            if mask.any():
                return frozenset(int(i) for i in np.flatnonzero(mask))
    max_size = min(max_size, n)
    min_size = max(1, min(min_size, max_size))
    size = int(rng.integers(min_size, max_size + 1))
    members = rng.choice(n, size=size, replace=False)
    return frozenset(int(i) for i in members)
