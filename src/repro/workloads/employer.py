"""Employer-record workloads: many public attributes, skewed group sizes.

The audit literature's canonical risk scenario (990/EEO-1-style employer
filings): every record carries *public* categorical attributes — department,
site, pay grade — and one sensitive value (salary).  Queries arrive as
aggregates over attribute cells ("max salary in Legal at HQ"), so the
query-set structure is fixed by the public schema, group sizes follow a
Zipf-like skew (a few huge departments, a long tail of tiny ones), and the
dangerous queries are exactly the small-minority cells.

:class:`EmployerPopulation` generates the population; salaries land in
per-grade bands of the public range (duplicate-free almost surely, so the
probabilistic auditors apply directly).  :func:`group_query_stream` yields
a utility workload over random cells and unions;
:class:`EmployerGroupAttacker` plays the privacy game smallest-cells-first
— the realistic adversary who reads the org chart before querying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..rng import RngLike, as_generator
from ..sdb.dataset import Dataset
from ..types import AggregateKind, Query

#: A public attribute cell: (department, site, grade) indices.
CellKey = Tuple[int, int, int]


@dataclass
class EmployerPopulation:
    """A synthetic employer filing: public cells over sensitive salaries."""

    dataset: Dataset
    #: cell -> sorted record ids; only non-empty cells are kept
    cells: Dict[CellKey, List[int]] = field(default_factory=dict)
    departments: int = 0
    sites: int = 0
    grades: int = 0

    @staticmethod
    def generate(n: int, rng: RngLike = None, departments: int = 6,
                 sites: int = 3, grades: int = 4, skew: float = 1.2,
                 low: float = 0.0, high: float = 1.0
                 ) -> "EmployerPopulation":
        """Draw ``n`` employees into Zipf-skewed attribute cells.

        Cell weights follow ``1 / rank^skew`` over the enumerated cells,
        so a handful of cells hold most records and the tail holds
        singleton groups.  Salaries are uniform within their grade's band
        of ``[low, high]`` (grade ``g`` of ``G`` spans the ``g``-th
        equal slice), duplicate-free by rejection.
        """
        if n < 1:
            raise ValueError("n must be positive")
        if min(departments, sites, grades) < 1:
            raise ValueError("need at least one value per attribute")
        if skew <= 0:
            raise ValueError("skew must be positive")
        gen = as_generator(rng)
        keys: List[CellKey] = [
            (d, s, g)
            for d in range(departments)
            for s in range(sites)
            for g in range(grades)
        ]
        weights = [1.0 / (rank + 1) ** skew for rank in range(len(keys))]
        total = sum(weights)
        probs = [w / total for w in weights]
        assignment = gen.choice(len(keys), size=n, p=probs)
        cells: Dict[CellKey, List[int]] = {}
        for record, cell_idx in enumerate(assignment):
            cells.setdefault(keys[int(cell_idx)], []).append(record)
        band = (high - low) / grades
        while True:
            values = [0.0] * n
            for key in sorted(cells):
                grade = key[2]
                lo = low + grade * band
                for record in cells[key]:
                    values[record] = float(gen.uniform(lo, lo + band))
            if len(set(values)) == n:
                break
        dataset = Dataset(values, low=low, high=high)
        return EmployerPopulation(dataset=dataset, cells=dict(sorted(
            cells.items())), departments=departments, sites=sites,
            grades=grades)

    @property
    def n(self) -> int:
        return self.dataset.n

    def cells_by_size(self) -> List[Tuple[CellKey, List[int]]]:
        """Non-empty cells, smallest first (ties by key: deterministic)."""
        return sorted(self.cells.items(), key=lambda kv: (len(kv[1]), kv[0]))

    def cell_query(self, key: CellKey, kind: AggregateKind) -> Query:
        """The aggregate query over one attribute cell."""
        return Query(kind, frozenset(self.cells[key]))

    def union_query(self, keys: List[CellKey],
                    kind: AggregateKind) -> Query:
        """An aggregate over the union of several cells (e.g. a whole
        department across sites)."""
        members: set = set()
        for key in keys:
            members.update(self.cells[key])
        return Query(kind, frozenset(members))


def group_query_stream(population: EmployerPopulation,
                       kind: AggregateKind = AggregateKind.SUM,
                       rng: RngLike = None,
                       union_probability: float = 0.3
                       ) -> Iterator[Query]:
    """An endless utility workload over random cells and cell unions.

    Mirrors real reporting traffic: mostly single-cell aggregates, with a
    fraction of rollups unioning 2–4 cells.
    """
    gen = as_generator(rng)
    keys = sorted(population.cells)
    while True:
        if len(keys) > 1 and gen.random() < union_probability:
            count = int(gen.integers(2, min(4, len(keys)) + 1))
            picked = [keys[int(i)] for i in
                      gen.choice(len(keys), size=count, replace=False)]
            yield population.union_query(sorted(picked), kind)
        else:
            key = keys[int(gen.integers(len(keys)))]
            yield population.cell_query(key, kind)


class EmployerGroupAttacker:
    """Plays the privacy game over the public org chart, small cells first.

    Round ``t`` poses the ``t``-th smallest cell's aggregate; once every
    cell has been tried, the attacker walks pairwise unions of the
    smallest cells (the rollup-differencing pattern).  Deterministic given
    the population — the schema *is* the attack surface.
    """

    def __init__(self, population: EmployerPopulation,
                 kind: AggregateKind = AggregateKind.MAX):
        self.population = population
        self.kind = kind
        ordered = population.cells_by_size()
        self._queries: List[Query] = [
            population.cell_query(key, kind) for key, _ in ordered
        ]
        smallest = [key for key, _ in ordered[:6]]
        for i in range(len(smallest)):
            for j in range(i + 1, len(smallest)):
                self._queries.append(population.union_query(
                    [smallest[i], smallest[j]], kind))

    def __call__(self, round_no: int, history) -> Optional[Query]:
        if round_no - 1 < len(self._queries):
            return self._queries[round_no - 1]
        return None
