"""1-dimensional range queries over an ordered public attribute (§6).

The paper's third utility experiment orders the records on a public
attribute ("age") and poses only contiguous range sum queries touching
between 50 and 100 records.  Because contiguous ranges span a far smaller
query space than arbitrary subsets, the denial probability never reaches the
uniform-random worst case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..exceptions import InvalidQueryError
from ..rng import RngLike, as_generator
from ..types import AggregateKind, Query


@dataclass
class RangeQueryWorkload:
    """Contiguous range queries over records sorted by a public attribute.

    Parameters
    ----------
    order:
        Record indices sorted by the public attribute (identity order means
        the records are already sorted).
    min_span, max_span:
        Range width bounds (the paper uses 50–100).
    """

    order: Sequence[int]
    min_span: int = 50
    max_span: int = 100
    kind: AggregateKind = AggregateKind.SUM

    def __post_init__(self) -> None:
        if not self.order:
            raise InvalidQueryError("empty record order")
        if not 1 <= self.min_span <= self.max_span:
            raise InvalidQueryError("need 1 <= min_span <= max_span")
        self.max_span = min(self.max_span, len(self.order))
        self.min_span = min(self.min_span, self.max_span)

    def sample(self, rng: RngLike = None) -> Query:
        """One random contiguous range query."""
        gen = as_generator(rng)
        span = int(gen.integers(self.min_span, self.max_span + 1))
        start = int(gen.integers(0, len(self.order) - span + 1))
        members = frozenset(self.order[start:start + span])
        return Query(self.kind, members)

    def stream(self, count: int, rng: RngLike = None) -> Iterator[Query]:
        """``count`` i.i.d. range queries."""
        gen = as_generator(rng)
        for _ in range(count):
            yield self.sample(gen)


def range_query_stream(n: int, count: int, rng: RngLike = None,
                       min_span: int = 50, max_span: int = 100,
                       kind: AggregateKind = AggregateKind.SUM
                       ) -> Iterator[Query]:
    """Range queries over identity-ordered records (convenience form)."""
    workload = RangeQueryWorkload(order=list(range(n)), min_span=min_span,
                                  max_span=max_span, kind=kind)
    return workload.stream(count, rng=rng)
