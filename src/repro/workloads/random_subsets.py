"""Uniform random subset queries — the paper's random-query model."""

from __future__ import annotations

from typing import Iterator, Optional

from ..rng import RngLike, as_generator, random_subset
from ..types import AggregateKind, Query


def random_query_stream(n: int, count: int,
                        kind: AggregateKind = AggregateKind.SUM,
                        rng: RngLike = None,
                        min_size: Optional[int] = None,
                        max_size: Optional[int] = None) -> Iterator[Query]:
    """Yield ``count`` i.i.d. uniform random queries over ``n`` records.

    With no size bounds each record is included with probability 1/2
    (footnote 6's uniform model); with bounds, sizes are uniform in
    ``[min_size, max_size]``.
    """
    gen = as_generator(rng)
    for _ in range(count):
        if min_size is None and max_size is None:
            subset = random_subset(gen, n)
        else:
            subset = random_subset(gen, n, min_size=min_size or 1,
                                   max_size=max_size)
        yield Query(kind, subset)
