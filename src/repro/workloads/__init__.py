"""Query and update workloads for the Section 6 experiments.

* :mod:`~repro.workloads.random_subsets` — uniform random subset queries
  (Figures 1–3);
* :mod:`~repro.workloads.range_queries` — 1-dimensional range sum queries
  over an ordered public attribute, 50–100 records each (Figure 2, Plot 3);
* :mod:`~repro.workloads.update_stream` — query streams interleaved with
  modifications (Figure 2, Plot 2);
* :mod:`~repro.workloads.subcube` — Kam-Ullman [20] subcube sum queries
  (patterns over 0/1/*; paper §2.1);
* :mod:`~repro.workloads.employer` — employer-record scenarios: public
  attribute cells with Zipf-skewed group sizes over sensitive salaries
  (the empirical privacy audit's realistic workload).
"""

from .employer import (
    EmployerGroupAttacker,
    EmployerPopulation,
    group_query_stream,
)
from .random_subsets import random_query_stream
from .range_queries import RangeQueryWorkload, range_query_stream
from .subcube import SubcubeAddressing, random_subcube_patterns
from .update_stream import interleave_updates

__all__ = [
    "EmployerGroupAttacker",
    "EmployerPopulation",
    "RangeQueryWorkload",
    "SubcubeAddressing",
    "group_query_stream",
    "random_subcube_patterns",
    "interleave_updates",
    "random_query_stream",
    "range_query_stream",
]
