"""Subcube sum queries (Kam & Ullman [20]; paper §2.1).

Records are addressed by binary public attributes; a query is a pattern
string over ``{0, 1, *}`` ("don't care"), and "the elements to be summed up
are those whose public attribute values match the query string pattern".
Patterns translate into ordinary query sets, so the paper's row-space sum
auditor protects subcube workloads unchanged — this module provides the
addressing, the pattern algebra, and a workload generator.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Sequence, Tuple

from ..exceptions import InvalidQueryError
from ..rng import RngLike, as_generator
from ..types import AggregateKind, Query

Bits = Tuple[int, ...]


class SubcubeAddressing:
    """Maps records to binary attribute vectors and patterns to query sets.

    Parameters
    ----------
    attributes:
        Per-record binary attribute vectors (all the same length ``d``).
        Multiple records may share an address (real tables do).
    """

    def __init__(self, attributes: Sequence[Sequence[int]]):
        if not attributes:
            raise InvalidQueryError("need at least one record")
        width = len(attributes[0])
        if width == 0:
            raise InvalidQueryError("need at least one binary attribute")
        self._by_record: List[Bits] = []
        self._index: Dict[Bits, List[int]] = {}
        for record, bits in enumerate(attributes):
            key = tuple(int(b) for b in bits)
            if len(key) != width or any(b not in (0, 1) for b in key):
                raise InvalidQueryError(
                    f"record {record}: attributes must be 0/1 vectors of "
                    f"width {width}"
                )
            self._by_record.append(key)
            self._index.setdefault(key, []).append(record)
        self.width = width

    @property
    def n(self) -> int:
        """Number of records."""
        return len(self._by_record)

    def address_of(self, record: int) -> Bits:
        """The record's binary attribute vector."""
        return self._by_record[record]

    # ------------------------------------------------------------------
    # Patterns
    # ------------------------------------------------------------------

    def _validate(self, pattern: str) -> str:
        if len(pattern) != self.width or any(c not in "01*" for c in pattern):
            raise InvalidQueryError(
                f"pattern must be a length-{self.width} string over 0/1/*"
            )
        return pattern

    def matches(self, pattern: str, bits: Bits) -> bool:
        """Whether an address matches the pattern."""
        self._validate(pattern)
        return all(c == "*" or int(c) == b for c, b in zip(pattern, bits))

    def query_set(self, pattern: str) -> frozenset:
        """All record indices whose address matches ``pattern``."""
        self._validate(pattern)
        fixed = [(i, int(c)) for i, c in enumerate(pattern) if c != "*"]
        out: List[int] = []
        free = [i for i, c in enumerate(pattern) if c == "*"]
        if len(free) <= self.width // 2 or len(self._index) > 2 ** len(free):
            # Enumerate matching addresses (cheap when few stars).
            for combo in itertools.product((0, 1), repeat=len(free)):
                bits = [0] * self.width
                for i, b in fixed:
                    bits[i] = b
                for i, b in zip(free, combo):
                    bits[i] = b
                out.extend(self._index.get(tuple(bits), ()))
        else:
            # Scan addresses (cheap when many stars).
            for key, records in self._index.items():
                if all(key[i] == b for i, b in fixed):
                    out.extend(records)
        return frozenset(out)

    def sum_query(self, pattern: str) -> Query:
        """The subcube sum query for ``pattern``.

        Raises :class:`InvalidQueryError` when no record matches.
        """
        members = self.query_set(pattern)
        if not members:
            raise InvalidQueryError(f"pattern {pattern!r} matches no record")
        return Query(AggregateKind.SUM, members)


def random_subcube_patterns(width: int, count: int, rng: RngLike = None,
                            star_probability: float = 0.5) -> Iterator[str]:
    """Random patterns over ``{0,1,*}^width`` (i.i.d. per position)."""
    if not 0.0 <= star_probability <= 1.0:
        raise InvalidQueryError("star_probability must be in [0, 1]")
    gen = as_generator(rng)
    for _ in range(count):
        chars = []
        for _ in range(width):
            if gen.random() < star_probability:
                chars.append("*")
            else:
                chars.append(str(int(gen.integers(2))))
        yield "".join(chars)
