"""Query streams interleaved with database updates (§6, Figure 2 Plot 2).

The paper's update experiment modifies one record's sensitive value every
``update_every`` queries (10 in the paper); past information held by the
user goes stale, so more queries can be answered.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from ..rng import RngLike, as_generator
from ..sdb.updates import Modify
from ..types import Query

StreamItem = Union[Query, Modify]


def interleave_updates(queries: Iterable[Query], n: int,
                       update_every: int = 10,
                       low: float = 0.0, high: float = 1.0,
                       rng: RngLike = None) -> Iterator[StreamItem]:
    """Yield the query stream with a :class:`Modify` before every
    ``update_every``-th query (uniform new value, uniform victim record)."""
    if update_every < 1:
        raise ValueError("update_every must be positive")
    gen = as_generator(rng)
    for idx, query in enumerate(queries):
        if idx and idx % update_every == 0:
            victim = int(gen.integers(n))
            yield Modify(victim, float(gen.uniform(low, high)))
        yield query
