"""The denial-decoding attack against value-based max auditors (§2.2).

The paper's motivating example: ask ``max{x_a, x_b, x_c}``, learn 9; ask
``max{x_a, x_b}``.  A *value-based* auditor denies exactly when the true
answer is below 9 (answering would pin ``x_c = 9``) — so the denial itself
reveals ``x_c = 9``.

The attack turns this into a harvest: partition the records into groups of
three, learn each group's max ``m``, then probe all three pairs inside the
group.  Against a value-based auditor **exactly one** pair is denied — the
one excluding the group's max holder — which the attacker decodes into an
exact value.  Extraction rate: one value per group, ``n/3`` overall.

Against a *simulatable* auditor every pair probe is denied regardless of the
hidden values, the one-denial signature never appears, and the attacker
deduces nothing — the Section 2.2 argument, made quantitative (see
``benchmarks/bench_ablation_simulatability.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..rng import RngLike, as_generator
from ..types import AggregateKind, Query


@dataclass
class DenialDecodingAttack:
    """Outcome of one denial-decoding run."""

    learned: Dict[int, float] = field(default_factory=dict)
    queries_posed: int = 0
    denials: int = 0
    groups_probed: int = 0

    @property
    def values_extracted(self) -> int:
        """How many sensitive values the attacker claims to have pinned."""
        return len(self.learned)


def run_denial_decoding_attack(auditor, n: int, rng: RngLike = None,
                               group_size: int = 3,
                               max_queries: int = 10_000
                               ) -> DenialDecodingAttack:
    """Run the group-probing attack against ``auditor`` over ``n`` records.

    The attacker uses only public responses.  Decoding rules (sound against
    value-based deniers):

    * exactly one pair probe in a group is denied → the excluded element
      holds the group max;
    * a pair probe answers *below* the group max → likewise (the
      no-protection oracle baseline leaks this way).

    When every pair is denied (the simulatable signature) the group yields
    nothing.
    """
    if group_size < 3:
        raise ValueError("group_size must be at least 3")
    gen = as_generator(rng)
    result = DenialDecodingAttack()
    order = list(gen.permutation(n))

    def pose(indices) -> "object":
        result.queries_posed += 1
        return auditor.audit(Query(AggregateKind.MAX, frozenset(indices)))

    for start in range(0, n - group_size + 1, group_size):
        if result.queries_posed + group_size + 1 > max_queries:
            break
        group = [int(i) for i in order[start:start + group_size]]
        decision = pose(group)
        if decision.denied:
            result.denials += 1
            continue
        group_max = decision.value
        result.groups_probed += 1
        denied_excluded: List[int] = []
        leaked_excluded: Optional[int] = None
        for excluded in group:
            probe = [i for i in group if i != excluded]
            verdict = pose(probe)
            if verdict.denied:
                result.denials += 1
                denied_excluded.append(excluded)
            elif verdict.value < group_max:
                leaked_excluded = excluded
        if len(denied_excluded) == 1:
            # Value-based denial: the probe omitting the holder was refused.
            result.learned[denied_excluded[0]] = group_max
        elif leaked_excluded is not None and not denied_excluded:
            # Oracle-style leak: an answered probe fell below the max.
            result.learned[leaked_excluded] = group_max
        # All pairs denied (simulatable signature): deduce nothing.
    return result
