"""Auditing denial-of-service (paper §7).

"Such an approach could potentially ward off denial of service attacks
where a malicious user poses queries in such a way that would cause many
innocuous queries to be denied in the future."

Because all users share one auditor (the collusion-safe pooling of §5), a
saboteur can *spend the shared information budget*: for the sum auditor the
budget is the query-matrix rank, so ~n cheap random queries freeze future
differencing room for everyone.  The mitigation the paper proposes is
pre-seeding: DBA-designated important queries are folded in *first*, so they
remain answerable forever no matter what the saboteur does afterwards.

:func:`run_dos_experiment` measures the victim's answer rate for a fixed
panel of queries in three worlds: no attack, attack, and attack with the
panel pre-seeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..auditors.sum_classic import SumClassicAuditor
from ..rng import RngLike, as_generator, random_subset
from ..sdb.dataset import Dataset
from ..types import Query, sum_query


@dataclass
class DosOutcome:
    """Victim answer rates under the three worlds."""

    baseline_rate: float       # victim alone on a fresh auditor
    attacked_rate: float       # after the saboteur's flood
    preseeded_rate: float      # flood, but the panel was pre-seeded

    @property
    def damage(self) -> float:
        """Answer-rate loss the flood caused."""
        return self.baseline_rate - self.attacked_rate

    @property
    def recovered(self) -> float:
        """How much of the loss pre-seeding restores."""
        return self.preseeded_rate - self.attacked_rate


def important_panel(n: int, groups: int = 5) -> List[Query]:
    """A panel of 'generic queries the world always wants answered'
    (the paper's example: total counts per hospital/department)."""
    if groups < 1 or n < groups:
        raise ValueError("need 1 <= groups <= n")
    panel = [sum_query(range(n))]
    bounds = [round(i * n / groups) for i in range(groups + 1)]
    for lo, hi in zip(bounds, bounds[1:]):
        if hi - lo >= 2:
            panel.append(sum_query(range(lo, hi)))
    return panel


def flood(auditor, n: int, queries: int, rng: RngLike = None) -> int:
    """The saboteur's random flood; returns how many were answered."""
    gen = as_generator(rng)
    answered = 0
    for _ in range(queries):
        answered += auditor.audit(sum_query(random_subset(gen, n))).answered
    return answered


def _panel_rate(auditor, panel: Sequence[Query]) -> float:
    return sum(auditor.would_answer(q) for q in panel) / len(panel)


def run_dos_experiment(n: int = 60, flood_queries: int = 120,
                       groups: int = 5, rng: RngLike = None) -> DosOutcome:
    """Measure the §7 DoS effect and the pre-seeding mitigation."""
    gen = as_generator(rng)
    values = Dataset.uniform(n, rng=gen, duplicate_free=False).values
    panel = important_panel(n, groups=groups)

    fresh = SumClassicAuditor(Dataset(list(values)))
    baseline = _panel_rate(fresh, panel)

    attacked = SumClassicAuditor(Dataset(list(values)))
    flood(attacked, n, flood_queries, rng=gen)
    attacked_rate = _panel_rate(attacked, panel)

    protected = SumClassicAuditor(Dataset(list(values)))
    protected.preseed([q.query_set for q in panel])
    flood(protected, n, flood_queries, rng=gen)
    preseeded_rate = _panel_rate(protected, panel)

    return DosOutcome(baseline, attacked_rate, preseeded_rate)
