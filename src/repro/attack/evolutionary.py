"""Evolutionary adversarial-workload search for auditor weak spots.

Random-query attackers measure an auditor's *average* exposure; this module
hunts for its *worst case* inside a query-budget: a small genetic search
over scripted workloads (fixed query sequences) whose fitness is the
empirical win rate over seeded privacy games, tie-broken by how far the
answered history pushed the posterior/prior ratios toward the edge of the
``lambda`` band (:func:`repro.privacy.compromise.band_margin`).  Scripts
that *almost* breach therefore survive and mutate toward escape even while
the win rate is still zero — the "grey-box audit" move of measuring
realized disclosure instead of trusting the claimed ``delta``.

Everything is deterministic under a fixed seed: the population, every
mutation, and every fitness game draw from generators spawned off one root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..privacy.compromise import band_margin
from ..privacy.game import PrivacyGame
from ..privacy.posterior import uniform_prior
from ..rng import RngLike, as_generator, random_subset, spawn
from ..types import AggregateKind, Query

#: Cap on the (possibly infinite) band margin so fitness stays totally
#: ordered and JSON-serialisable.
MARGIN_CAP = 50.0


class ScriptedAttacker:
    """Replays a fixed query script through the privacy game.

    After the script is exhausted the attacker returns ``None``, which the
    game treats as resignation — a script shorter than the horizon simply
    concedes its remaining rounds.
    """

    def __init__(self, script: List[Query]):
        self.script = list(script)

    def __call__(self, round_no: int, history) -> Optional[Query]:
        if round_no - 1 < len(self.script):
            return self.script[round_no - 1]
        return None


@dataclass
class EvolutionResult:
    """Outcome of one adversarial workload search."""

    best_script: List[Query]
    best_win_rate: float
    best_margin: float
    generations: int
    evaluations: int
    #: best (win_rate, margin) after each generation, for convergence plots
    progress: List[Tuple[float, float]] = field(default_factory=list)


def _mutate(script: List[Query], n: int, min_size: int, max_size: int,
            gen: np.random.Generator) -> List[Query]:
    """One point mutation: edit a single query's member set."""
    out = list(script)
    idx = int(gen.integers(len(out)))
    query = out[idx]
    members = set(query.query_set)
    outside = sorted(set(range(n)) - members)
    ordered = sorted(members)
    op = int(gen.integers(4))
    if op == 0 and outside and len(members) < max_size:       # grow
        members.add(outside[int(gen.integers(len(outside)))])
    elif op == 1 and len(members) > min_size:                 # shrink
        members.discard(ordered[int(gen.integers(len(ordered)))])
    elif op == 2 and outside:                                 # swap
        members.discard(ordered[int(gen.integers(len(ordered)))])
        members.add(outside[int(gen.integers(len(outside)))])
    else:                                                     # resample
        members = set(random_subset(gen, n, min_size=min_size,
                                    max_size=max_size))
    if not members:
        members = set(random_subset(gen, n, min_size=min_size,
                                    max_size=max_size))
    out[idx] = Query(query.kind, frozenset(members))
    return out


def _random_script(n: int, kind: AggregateKind, length: int,
                   min_size: int, max_size: int,
                   gen: np.random.Generator) -> List[Query]:
    return [Query(kind, random_subset(gen, n, min_size=min_size,
                                      max_size=max_size))
            for _ in range(length)]


def _evaluate(game: PrivacyGame, script: List[Query],
              make_auditor: Callable, make_dataset: Callable,
              eval_games: int, gen: np.random.Generator
              ) -> Tuple[float, float]:
    """(win rate, mean capped band margin) of a script over seeded games."""
    wins = 0
    margins: List[float] = []
    prior = uniform_prior(game.grid)
    for child in spawn(gen, eval_games):
        dataset = make_dataset(child)
        auditor = make_auditor(dataset, child)
        result = game.play(auditor, ScriptedAttacker(script))
        wins += int(result.attacker_won)
        answered = [(q, d.value) for q, d in result.history
                    if d.answered and d.value is not None]
        if result.attacker_won:
            margins.append(MARGIN_CAP)
        elif answered:
            posterior = game.posterior_oracle(answered)
            margins.append(min(band_margin(posterior, prior), MARGIN_CAP))
        else:
            margins.append(0.0)
    mean_margin = sum(margins) / len(margins) if margins else 0.0
    return wins / eval_games, mean_margin


def evolve_workload(game: PrivacyGame, make_auditor: Callable,
                    make_dataset: Callable, n: int,
                    kind: AggregateKind = AggregateKind.MAX,
                    population: int = 8, generations: int = 4,
                    eval_games: int = 3, min_size: int = 1,
                    max_size: Optional[int] = None,
                    rng: RngLike = None) -> EvolutionResult:
    """Search for a scripted workload maximising attacker win probability.

    ``make_auditor(dataset, rng)`` and ``make_dataset(rng)`` are factories
    (note the auditor factory takes a per-game generator, unlike
    :func:`repro.privacy.game.estimate_privacy`, so fitness games never
    share auditor randomness).  Returns the fittest script found plus its
    stats; ``evaluations`` counts fitness games played, the search's cost
    unit.
    """
    if population < 2:
        raise ValueError("population must be at least 2")
    if max_size is None:
        max_size = n
    gen = as_generator(rng)
    scripts = [_random_script(n, kind, game.rounds, min_size, max_size, gen)
               for _ in range(population)]
    evaluations = 0
    progress: List[Tuple[float, float]] = []
    scored: List[Tuple[float, float, int]] = []
    for generation in range(generations):
        scored = []
        for i, script in enumerate(scripts):
            fitness = _evaluate(game, script, make_auditor, make_dataset,
                                eval_games, gen)
            evaluations += eval_games
            scored.append((fitness[0], fitness[1], i))
        scored.sort(key=lambda t: (-t[0], -t[1], t[2]))
        progress.append((scored[0][0], scored[0][1]))
        if generation == generations - 1:
            break
        elite = [scripts[i] for _, _, i in scored[:max(2, population // 2)]]
        children = list(elite)
        while len(children) < population:
            parent = elite[int(gen.integers(len(elite)))]
            children.append(_mutate(parent, n, min_size, max_size, gen))
        scripts = children
    best_win, best_margin, best_idx = scored[0]
    return EvolutionResult(
        best_script=scripts[best_idx],
        best_win_rate=best_win,
        best_margin=best_margin,
        generations=generations,
        evaluations=evaluations,
        progress=progress,
    )
