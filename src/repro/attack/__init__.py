"""Attackers for exercising auditors.

* :mod:`~repro.attack.random_attacker` — the paper's random-query utility
  model (uniform subsets, sized range queries, interleaved updates);
* :mod:`~repro.attack.naive_max_attack` — the adaptive denial-decoding
  attack against value-based (non-simulatable) max auditors, motivating
  simulatability (paper, Section 2.2 example);
* :mod:`~repro.attack.interval_attack` — a partial-disclosure attacker that
  drives posterior/prior ratios with shrinking max queries;
* :mod:`~repro.attack.greedy_overlap` — greedy overlap-maximizing attackers
  (sum differencing, max-bound squeezing) for the empirical audit;
* :mod:`~repro.attack.evolutionary` — evolutionary search over scripted
  workloads hunting auditor-specific weak spots;
* :mod:`~repro.attack.dos_attack` — the §7 auditing denial-of-service
  attack and its pre-seeding mitigation.
"""

from .dos_attack import DosOutcome, important_panel, run_dos_experiment
from .evolutionary import (
    EvolutionResult,
    ScriptedAttacker,
    evolve_workload,
)
from .greedy_overlap import GreedyOverlapAttacker
from .interval_attack import IntervalAttacker
from .naive_max_attack import DenialDecodingAttack, run_denial_decoding_attack
from .random_attacker import RandomQueryAttacker

__all__ = [
    "DenialDecodingAttack",
    "DosOutcome",
    "EvolutionResult",
    "GreedyOverlapAttacker",
    "important_panel",
    "run_dos_experiment",
    "IntervalAttacker",
    "RandomQueryAttacker",
    "ScriptedAttacker",
    "evolve_workload",
    "run_denial_decoding_attack",
]
