"""Random-query attackers — the paper's utility workload (footnote 6).

"A random query is a query drawn independently and uniformly at random from
the set of all sum queries that could be formulated over the data": each
record is included with probability 1/2 (resampling empty sets).
"""

from __future__ import annotations

from typing import Optional

from ..rng import RngLike, as_generator, random_subset
from ..types import AggregateKind, Query


class RandomQueryAttacker:
    """Poses i.i.d. uniform random queries of a fixed aggregate kind.

    Callable with the privacy-game signature ``(round, history) -> Query``.
    """

    def __init__(self, n: int, kind: AggregateKind = AggregateKind.SUM,
                 rng: RngLike = None,
                 min_size: Optional[int] = None,
                 max_size: Optional[int] = None):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self.kind = kind
        self._rng = as_generator(rng)
        self.min_size = min_size
        self.max_size = max_size

    def next_query(self) -> Query:
        """Draw the next random query."""
        if self.min_size is None and self.max_size is None:
            subset = random_subset(self._rng, self.n)
        else:
            subset = random_subset(
                self._rng, self.n,
                min_size=self.min_size or 1,
                max_size=self.max_size,
            )
        return Query(self.kind, subset)

    def __call__(self, round_no: int, history) -> Query:
        return self.next_query()
