"""Greedy overlap-maximizing attackers for the privacy game.

The paper's utility model poses *random* queries; a real adversary does
better by making every new query overlap the answered history as much as
possible, so each answer conditions the posterior of a few already-squeezed
elements instead of spreading information thin.  Two grey-box strategies,
both simulatable from the attacker's side (they read only public data —
answered queries and values):

* **sum differencing** — re-pose the last answered set with exactly one
  element added or removed.  Two answered sums differing in one element pin
  that element's value: the oldest compromise in the statistical-database
  literature, and the attack a stateless minimum-frequency rule cannot see.
* **max squeezing** — maintain the per-element upper bounds implied by
  answered max queries and greedily query the lowest-bounded elements; a
  small answered max over already-bounded elements drives their
  posterior/prior ratios out of the ``lambda`` band fastest.

Both rotate deterministically through fallback candidates after denials, so
a hardened auditor faces sustained, targeted pressure rather than one probe.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..rng import RngLike, as_generator, random_subset
from ..types import AggregateKind, AuditDecision, Query

History = List[Tuple[Query, AuditDecision]]


class GreedyOverlapAttacker:
    """Poses queries maximally overlapping the answered history.

    Callable with the privacy-game signature ``(round, history) -> Query``.

    Parameters
    ----------
    n:
        Number of records (public).
    kind:
        ``SUM`` runs the differencing strategy; ``MAX`` (or ``MIN``) runs
        bound squeezing.
    base_size:
        Size of the opening query (and of fresh bases after repeated
        denials).  For ``SUM`` this should clear any frequency threshold
        the attacker suspects; overlap then shrinks the *effective* set
        to one element without ever posing a small query.
    squeeze_size:
        Target size of the squeezing queries in ``MAX``/``MIN`` mode.
    """

    def __init__(self, n: int, kind: AggregateKind = AggregateKind.SUM,
                 rng: RngLike = None, base_size: Optional[int] = None,
                 squeeze_size: int = 2):
        if n <= 1:
            raise ValueError("n must be at least 2")
        self.n = n
        self.kind = kind
        self._rng = as_generator(rng)
        self.base_size = base_size if base_size is not None \
            else max(2, n // 3)
        self.base_size = min(self.base_size, n - 1)
        self.squeeze_size = max(1, min(squeeze_size, n))
        self._denial_streak = 0

    # -- public helpers (grey-box state reconstruction) -----------------

    @staticmethod
    def answered_sets(history: History) -> List[Query]:
        """The answered queries, oldest first (public information)."""
        return [q for q, d in history if d.answered]

    @staticmethod
    def upper_bounds(history: History, n: int, high: float) -> Dict[int, float]:
        """Per-element upper bounds implied by answered max queries."""
        bounds = {i: high for i in range(n)}
        for query, decision in history:
            if decision.denied or query.kind is not AggregateKind.MAX:
                continue
            assert decision.value is not None
            for i in sorted(query.query_set):
                bounds[i] = min(bounds[i], decision.value)
        return bounds

    # -- strategies ------------------------------------------------------

    def _fresh_base(self) -> Query:
        subset = random_subset(self._rng, self.n,
                               min_size=self.base_size,
                               max_size=self.base_size)
        return Query(self.kind, subset)

    def _next_sum(self, history: History) -> Query:
        answered = [q for q, d in history if d.answered
                    and q.kind is self.kind]
        if not answered or self._denial_streak >= 3:
            self._denial_streak = 0
            return self._fresh_base()
        last = answered[-1].query_set
        members = sorted(last)
        outside = sorted(set(range(self.n)) - last)
        # Rotate through one-element edits: add each outsider, then drop
        # each member (never below 2 so repeats stay informative).
        edits: List[frozenset] = []
        for i in outside:
            edits.append(last | {i})
        if len(members) > 2:
            for i in members:
                edits.append(last - {i})
        posed = {q.query_set for q, _ in history}
        for edit in edits:
            if edit not in posed:
                return Query(self.kind, edit)
        return self._fresh_base()

    def _next_extreme(self, history: History) -> Query:
        bounds = self.upper_bounds(history, self.n, high=float("inf"))
        # Lowest-bounded elements first (ties broken by index: determinism);
        # unbounded elements only pad the set when everything else is taken.
        order = sorted(range(self.n), key=lambda i: (bounds[i], i))
        size = self.squeeze_size + (self._denial_streak % 3)
        size = max(1, min(size, self.n))
        offset = self._denial_streak // 3 % self.n
        chosen = [order[(offset + j) % self.n] for j in range(size)]
        members = frozenset(chosen)
        posed = {q.query_set for q, _ in history if q.kind is self.kind}
        if members in posed:
            return Query(self.kind, frozenset(
                random_subset(self._rng, self.n, min_size=size,
                              max_size=size)))
        return Query(self.kind, members)

    # -- game protocol ---------------------------------------------------

    def __call__(self, round_no: int, history: History) -> Query:
        if history and history[-1][1].denied:
            self._denial_streak += 1
        else:
            self._denial_streak = 0
        if self.kind is AggregateKind.SUM:
            return self._next_sum(history)
        return self._next_extreme(history)
