"""A partial-disclosure attacker for the ``(lambda, gamma, T)`` game.

Small max queries are devastating under probabilistic compromise: answering
``max(Q) = M`` pins every element of ``Q`` below ``M``, zeroing the
posterior of all buckets beyond ``M`` — an immediate ``S_lambda = 0`` unless
``M`` falls in the top bucket and ``|Q|`` is large.  This attacker simply
poses small random max queries; a permissive auditor loses the game almost
immediately, while the Section 3.1 auditor denies the dangerous ones and
stays ``(lambda, delta, gamma, T)``-private.
"""

from __future__ import annotations

from ..rng import RngLike, as_generator, random_subset
from ..types import AggregateKind, Query


class IntervalAttacker:
    """Poses small max queries to force posterior/prior band violations."""

    def __init__(self, n: int, rng: RngLike = None,
                 min_size: int = 1, max_size: int = 3):
        self.n = n
        self._rng = as_generator(rng)
        self.min_size = min_size
        self.max_size = max_size

    def __call__(self, round_no: int, history) -> Query:
        subset = random_subset(self._rng, self.n,
                               min_size=self.min_size,
                               max_size=self.max_size)
        return Query(AggregateKind.MAX, subset)
