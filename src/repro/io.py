"""CSV loading for audited statistical databases.

Real deployments start from a table on disk.  :func:`load_csv_database`
reads a CSV with a header row, splits off the sensitive column, infers
numeric public columns, and wires up an auditor — the shortest path from a
file to an audited statistics endpoint (see the ``serve`` CLI command).
"""

from __future__ import annotations

import csv
import io
from typing import Any, Callable, Optional

from .exceptions import InvalidQueryError
from .sdb.dataset import Dataset
from .sdb.engine import StatisticalDatabase


def _coerce(value: str):
    """Numbers become int/float; everything else stays a string."""
    text = value.strip()
    try:
        number = float(text)
    except ValueError:
        return text
    if number.is_integer() and "." not in text and "e" not in text.lower():
        return int(number)
    return number


def read_records(handle) -> list:
    """Parse CSV rows (header required) into coerced record dicts."""
    reader = csv.DictReader(handle)
    if reader.fieldnames is None:
        raise InvalidQueryError("CSV input has no header row")
    records = []
    for row in reader:
        records.append({key: _coerce(val) for key, val in row.items()
                        if key is not None})
    if not records:
        raise InvalidQueryError("CSV input has no data rows")
    return records


def load_csv_database(path: str, sensitive_column: str,
                      auditor_factory: Callable[[Dataset], object],
                      low: Optional[float] = None,
                      high: Optional[float] = None,
                      wal_path: Optional[str] = None,
                      verify_wal: bool = False,
                      checkpoint: Any = None,
                      replicate_to: Any = None) -> StatisticalDatabase:
    """Build an audited :class:`StatisticalDatabase` from a CSV file.

    ``wal_path`` enables the crash-safe write-ahead audit log,
    ``checkpoint`` (a :class:`~repro.resilience.checkpoint.
    CheckpointPolicy`) upgrades it to the segmented, checkpointed WAL
    with bounded recovery replay, and ``replicate_to`` (replica
    directories or replication links) ships the decision stream to
    follower replicas (see :meth:`StatisticalDatabase.from_records`).
    """
    with open(path, newline="") as handle:
        records = read_records(handle)
    if sensitive_column not in records[0]:
        raise InvalidQueryError(
            f"sensitive column {sensitive_column!r} not found; "
            f"columns are {sorted(records[0])}"
        )
    return StatisticalDatabase.from_records(
        records, sensitive_column=sensitive_column,
        auditor_factory=auditor_factory, low=low, high=high,
        wal_path=wal_path, verify_wal=verify_wal, checkpoint=checkpoint,
        replicate_to=replicate_to,
    )


def load_csv_string(text: str, sensitive_column: str,
                    auditor_factory: Callable[[Dataset], object],
                    low: Optional[float] = None,
                    high: Optional[float] = None) -> StatisticalDatabase:
    """Like :func:`load_csv_database`, from an in-memory CSV string."""
    records = read_records(io.StringIO(text))
    if sensitive_column not in records[0]:
        raise InvalidQueryError(
            f"sensitive column {sensitive_column!r} not found; "
            f"columns are {sorted(records[0])}"
        )
    return StatisticalDatabase.from_records(
        records, sensitive_column=sensitive_column,
        auditor_factory=auditor_factory, low=low, high=high,
    )
