"""The ``(lambda, gamma, T)``-privacy game harness (paper, Section 2.2).

The attacker poses up to ``T`` queries; the auditor answers or denies; the
attacker *wins* if after some round the answered information drives some
posterior/prior bucket ratio out of the ``lambda`` band (``S_lambda = 0``).
An auditor is ``(lambda, delta, gamma, T)``-private when every attacker wins
with probability at most ``delta`` (over the dataset draw and coin flips).

The harness is generic over the *posterior oracle* — a callable that maps the
answered (query, value) history to the true ``(n, gamma)`` posterior bucket
matrix — so that exact oracles (max synopsis closed form) and Monte Carlo
oracles (max-and-min via the colouring sampler) both plug in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..types import AuditDecision, Query
from .compromise import ratios_within_band
from .intervals import IntervalGrid
from .posterior import max_synopsis_posterior_matrix, uniform_prior

History = List[Tuple[Query, AuditDecision]]
PosteriorOracle = Callable[[List[Tuple[Query, float]]], np.ndarray]


@dataclass
class GameResult:
    """Outcome of one privacy game."""

    attacker_won: bool
    breach_round: Optional[int]
    rounds_played: int
    denials: int
    history: History = field(default_factory=list)

    @property
    def answered(self) -> int:
        """Number of answered queries."""
        return self.rounds_played - self.denials


class PrivacyGame:
    """Plays one ``(lambda, gamma, T)``-privacy game.

    ``tol`` widens the breach check's ratio band; Monte Carlo posterior
    oracles (max-and-min colouring, sum hit-and-run) need a slack matching
    their sampling noise, exactly as the probabilistic auditors' own
    ``mc_tolerance`` does.  The exact max oracle keeps the default.
    """

    def __init__(self, grid: IntervalGrid, lam: float, rounds: int,
                 posterior_oracle: PosteriorOracle, tol: float = 1e-12):
        if rounds < 1:
            raise ValueError("rounds must be positive")
        self.grid = grid
        self.lam = lam
        self.rounds = rounds
        self.posterior_oracle = posterior_oracle
        self.tol = tol

    def play(self, auditor, attacker) -> GameResult:
        """Run the game: ``attacker(round, history) -> Query``.

        The breach check uses the true posterior after each *answered*
        query (simulatable denials are information-free by construction).
        """
        history: History = []
        answered: List[Tuple[Query, float]] = []
        denials = 0
        for t in range(1, self.rounds + 1):
            query = attacker(t, history)
            if query is None:
                return GameResult(False, None, t - 1, denials, history)
            decision = auditor.audit(query)
            history.append((query, decision))
            if decision.denied:
                denials += 1
                continue
            assert decision.value is not None
            answered.append((query, decision.value))
            posterior = self.posterior_oracle(answered)
            prior = uniform_prior(self.grid)
            if not ratios_within_band(posterior, prior, self.lam,
                                      tol=self.tol):
                return GameResult(True, t, t, denials, history)
        return GameResult(False, None, self.rounds, denials, history)


def make_max_posterior_oracle(grid: IntervalGrid, n: int) -> PosteriorOracle:
    """Exact posterior oracle for pure max-query histories (§3.1 math)."""
    from ..synopsis.extreme_synopsis import MaxSynopsis

    def oracle(answered: List[Tuple[Query, float]]) -> np.ndarray:
        synopsis = MaxSynopsis(n, limit=grid.high)
        for query, value in answered:
            synopsis.insert(query.query_set, value)
        return max_synopsis_posterior_matrix(grid, synopsis)

    return oracle


def make_maxmin_posterior_oracle(grid: IntervalGrid, n: int,
                                 num_samples: int = 200,
                                 rng=None) -> PosteriorOracle:
    """Monte Carlo posterior oracle for mixed max/min histories (§3.2).

    Builds the combined synopsis from the answered history and estimates
    bucket probabilities with the Rao-Blackwellised colouring sampler.
    Noisier than the exact max oracle; suitable for game-level checks with
    a tolerance.
    """
    from ..coloring.sampler import PosteriorSampler
    from ..rng import as_generator
    from ..synopsis.combined import CombinedSynopsis

    gen = as_generator(rng)

    def oracle(answered: List[Tuple[Query, float]]) -> np.ndarray:
        synopsis = CombinedSynopsis(n, grid.low, grid.high)
        for query, value in answered:
            synopsis.insert(query.kind, query.query_set, value)
        sampler = PosteriorSampler(synopsis, rng=gen)
        return sampler.estimate_interval_probabilities(num_samples,
                                                       grid.edges)

    return oracle


def make_sum_posterior_oracle(grid: IntervalGrid, n: int,
                              num_samples: int = 200,
                              steps_per_sample: Optional[int] = None,
                              rng=None) -> PosteriorOracle:
    """Monte Carlo posterior oracle for pure sum-query histories ([21]).

    Conditioning uniform cube data on answered sums leaves a uniform
    distribution over an affine slice of the cube; bucket probabilities
    are estimated from a hit-and-run ensemble.  The chain is seeded at the
    projection of the cube centre onto the answered affine subspace — a
    feasible point whenever the answers came from a real dataset and the
    slice is well-conditioned (always, for the short honest histories the
    privacy game produces).
    """
    from ..polytope.halfspace import AffineSlice
    from ..polytope.hit_and_run import HitAndRunSampler
    from ..rng import as_generator

    gen = as_generator(rng)

    def oracle(answered: List[Tuple[Query, float]]) -> np.ndarray:
        slice_ = AffineSlice(n, grid.low, grid.high)
        for query, value in answered:
            vec = np.zeros(n)
            vec[sorted(query.query_set)] = 1.0
            slice_.add_equality(vec, value)
        a_mat, b_vec = slice_.matrix()
        seed = np.full(n, 0.5 * (grid.low + grid.high))
        # Alternating projection (affine subspace <-> box): converges to a
        # feasible point because the answered history came from one.
        for _ in range(64):
            seed = seed + np.linalg.lstsq(
                a_mat, b_vec - a_mat @ seed, rcond=None
            )[0]
            if slice_.contains(seed):
                break
            seed = np.clip(seed, grid.low, grid.high)
        sampler = HitAndRunSampler(slice_, seed, rng=gen,
                                   steps_per_sample=steps_per_sample)
        samples = sampler.samples_ensemble(num_samples)
        gamma = grid.gamma
        buckets = np.clip(
            np.searchsorted(grid.edges, samples, side="right") - 1,
            0, gamma - 1,
        )
        flat = (buckets + np.arange(n) * gamma).ravel()
        counts = np.bincount(flat, minlength=n * gamma).reshape(n, gamma)
        return counts / float(num_samples)

    return oracle


def estimate_privacy(game: PrivacyGame, make_auditor, make_attacker,
                     make_dataset, trials: int, rng=None) -> float:
    """Empirical attacker win rate over repeated games.

    ``make_auditor(dataset)``, ``make_attacker(rng)`` and
    ``make_dataset(rng)`` are factories so each trial is independent.
    An auditor is empirically ``(lambda, delta, gamma, T)``-private when the
    returned rate is at most ``delta`` (up to sampling error).
    """
    from ..rng import as_generator, spawn

    gen = as_generator(rng)
    wins = 0
    for child in spawn(gen, trials):
        dataset = make_dataset(child)
        auditor = make_auditor(dataset)
        attacker = make_attacker(child)
        result = game.play(auditor, attacker)
        wins += int(result.attacker_won)
    return wins / trials
