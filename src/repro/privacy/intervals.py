"""The interval grid ``I`` used by probabilistic compromise (§2.2).

The paper partitions the data range ``[alpha, beta]`` into ``gamma`` equal
intervals ``I_j = [alpha + (j-1)(beta-alpha)/gamma, alpha + j(beta-alpha)/gamma]``
for ``j = 1..gamma``; compromise is judged per element per interval.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..exceptions import PrivacyParameterError


class IntervalGrid:
    """``gamma`` equal-width buckets over ``[low, high]``.

    Buckets are indexed 1-based to match the paper's ``j = 1..gamma``.
    """

    def __init__(self, gamma: int, low: float = 0.0, high: float = 1.0):
        if gamma < 1:
            raise PrivacyParameterError("gamma must be a positive integer")
        if low >= high:
            raise PrivacyParameterError("require low < high")
        self.gamma = int(gamma)
        self.low = float(low)
        self.high = float(high)
        self.edges = np.linspace(self.low, self.high, self.gamma + 1)

    @property
    def width(self) -> float:
        """Width of each bucket."""
        return (self.high - self.low) / self.gamma

    @property
    def prior(self) -> float:
        """Prior bucket probability for a uniform value: ``1/gamma``."""
        return 1.0 / self.gamma

    def bucket(self, j: int) -> Tuple[float, float]:
        """The interval ``I_j`` (1-based)."""
        if not 1 <= j <= self.gamma:
            raise PrivacyParameterError(f"bucket index {j} out of 1..{self.gamma}")
        return float(self.edges[j - 1]), float(self.edges[j])

    def containing(self, value: float) -> int:
        """1-based index of the bucket containing ``value``.

        Matches the paper's ``ceil(M * gamma)`` convention for values in
        ``(low, high]``; ``value == low`` maps to bucket 1.
        """
        if not self.low <= value <= self.high:
            raise PrivacyParameterError(
                f"value outside the grid envelope "
                f"[{self.low}, {self.high}]"
            )
        scaled = (value - self.low) / (self.high - self.low) * self.gamma
        j = int(np.ceil(scaled))
        return min(max(j, 1), self.gamma)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        for j in range(1, self.gamma + 1):
            yield self.bucket(j)

    def __len__(self) -> int:
        return self.gamma
