"""Data distributions for probabilistic auditing beyond uniform (§3.1).

The paper assumes uniform data but notes "we believe that our techniques can
be extended to other more practical distributions in the future".  The
extension is clean for any i.i.d. continuous distribution with CDF ``F``:

* by exchangeability, each member of an equality predicate ``[max(S) = M]``
  is the witness with probability ``1/|S|`` regardless of ``F``;
* non-witnesses are i.i.d. from ``F`` truncated to ``(-inf, M)``:
  ``Pr{x <= t | x < M} = F(t) / F(M)``;
* the prior bucket probability of interval ``[a, b]`` is ``F(b) - F(a)``.

So Algorithm 1's ratio test and Algorithm 2's consistent-dataset sampler
need only a CDF and an inverse CDF.  :class:`DataDistribution` is that
interface; uniform, truncated-gaussian and piecewise-empirical instances are
provided.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Sequence

import numpy as np

from ..exceptions import PrivacyParameterError


class DataDistribution:
    """An i.i.d. data model on ``[low, high]`` with known CDF.

    Subclasses implement :meth:`cdf`; :meth:`ppf` inverts it (a generic
    bisection fallback is provided).
    """

    def __init__(self, low: float, high: float):
        if low >= high:
            raise PrivacyParameterError("require low < high")
        self.low = float(low)
        self.high = float(high)

    def cdf(self, x: float) -> float:
        """``Pr{X <= x}``; must be 0 at ``low`` and 1 at ``high``."""
        raise NotImplementedError

    def ppf(self, q: float) -> float:
        """Inverse CDF by bisection (override for a closed form)."""
        if not 0.0 <= q <= 1.0:
            raise PrivacyParameterError("quantile outside [0, 1]")
        lo, hi = self.low, self.high
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.cdf(mid) < q:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    # ------------------------------------------------------------------
    # Derived operations used by the auditors
    # ------------------------------------------------------------------

    def interval_probability(self, a: float, b: float) -> float:
        """``Pr{a <= X <= b}`` (prior bucket mass)."""
        return max(0.0, self.cdf(b) - self.cdf(a))

    def truncated_interval_probability(self, a: float, b: float,
                                       m: float) -> float:
        """``Pr{a <= X <= b | X < m}`` for a non-witness below ``m``."""
        fm = self.cdf(m)
        if fm <= 0.0:
            return 0.0
        return max(0.0, self.cdf(min(b, m)) - self.cdf(min(a, m))) / fm

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """i.i.d. draws via inverse transform."""
        return np.array([self.ppf(float(u))
                         for u in rng.uniform(0.0, 1.0, size=size)])

    def sample_below(self, rng: np.random.Generator, m: float,
                     size: int) -> np.ndarray:
        """i.i.d. draws conditioned below ``m`` (inverse transform on the
        truncated CDF)."""
        fm = self.cdf(m)
        return np.array([self.ppf(float(u) * fm)
                         for u in rng.uniform(0.0, 1.0, size=size)])


class UniformDistribution(DataDistribution):
    """Uniform on ``[low, high]`` — the paper's base case."""

    def cdf(self, x: float) -> float:
        if x <= self.low:
            return 0.0
        if x >= self.high:
            return 1.0
        return (x - self.low) / (self.high - self.low)

    def ppf(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise PrivacyParameterError("quantile outside [0, 1]")
        return self.low + q * (self.high - self.low)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=size)

    def sample_below(self, rng: np.random.Generator, m: float,
                     size: int) -> np.ndarray:
        return rng.uniform(self.low, min(m, self.high), size=size)


class TruncatedGaussianDistribution(DataDistribution):
    """Gaussian(mean, std) truncated and renormalised to ``[low, high]``."""

    def __init__(self, low: float, high: float, mean: float, std: float):
        super().__init__(low, high)
        if std <= 0:
            raise PrivacyParameterError("std must be positive")
        self.mean = float(mean)
        self.std = float(std)
        self._f_low = self._phi(low)
        self._f_high = self._phi(high)
        if self._f_high <= self._f_low:
            raise PrivacyParameterError("degenerate truncation window")

    def _phi(self, x: float) -> float:
        return 0.5 * (1.0 + math.erf((x - self.mean)
                                     / (self.std * math.sqrt(2.0))))

    def cdf(self, x: float) -> float:
        if x <= self.low:
            return 0.0
        if x >= self.high:
            return 1.0
        return (self._phi(x) - self._f_low) / (self._f_high - self._f_low)

    def ppf(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise PrivacyParameterError("quantile outside [0, 1]")
        from scipy.special import ndtri

        p = self._f_low + q * (self._f_high - self._f_low)
        p = min(max(p, 1e-15), 1.0 - 1e-15)
        x = self.mean + self.std * float(ndtri(p))
        return min(max(x, self.low), self.high)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        from scipy.special import ndtri

        u = rng.uniform(0.0, 1.0, size=size)
        p = np.clip(self._f_low + u * (self._f_high - self._f_low),
                    1e-15, 1.0 - 1e-15)
        return np.clip(self.mean + self.std * ndtri(p), self.low, self.high)

    def sample_below(self, rng: np.random.Generator, m: float,
                     size: int) -> np.ndarray:
        from scipy.special import ndtri

        fm = self.cdf(m)
        u = rng.uniform(0.0, 1.0, size=size) * fm
        p = np.clip(self._f_low + u * (self._f_high - self._f_low),
                    1e-15, 1.0 - 1e-15)
        return np.clip(self.mean + self.std * ndtri(p), self.low, self.high)


class EmpiricalDistribution(DataDistribution):
    """Piecewise-linear CDF fit to observed public data (e.g. published
    salary quantiles) — the "known probability distributions" the paper's
    partial-disclosure model assumes."""

    def __init__(self, samples: Sequence[float]):
        values = sorted(float(v) for v in samples)
        if len(values) < 2 or values[0] == values[-1]:
            raise PrivacyParameterError("need >= 2 distinct sample values")
        super().__init__(values[0], values[-1])
        self._xs: List[float] = values
        n = len(values)
        self._qs = [i / (n - 1) for i in range(n)]

    def cdf(self, x: float) -> float:
        if x <= self._xs[0]:
            return 0.0
        if x >= self._xs[-1]:
            return 1.0
        idx = bisect.bisect_right(self._xs, x) - 1
        x0, x1 = self._xs[idx], self._xs[idx + 1]
        q0, q1 = self._qs[idx], self._qs[idx + 1]
        if x1 == x0:
            return q1
        return q0 + (q1 - q0) * (x - x0) / (x1 - x0)
