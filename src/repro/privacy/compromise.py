"""Compromise predicates (paper, Section 2.2).

Partial disclosure is judged by the ratio of posterior to prior bucket
probabilities: the answers are *safe* (``S_lambda = 1``) when, for every
element ``i`` and bucket ``I``::

    1 - lambda <= Pr{x_i in I | answers} / Pr{x_i in I} <= 1 / (1 - lambda)

This module provides the band arithmetic shared by all probabilistic
auditors; classical (full-disclosure) compromise is structural and detected
by each auditor's own machinery.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import PrivacyParameterError


def ratio_band(lam: float) -> Tuple[float, float]:
    """The allowed posterior/prior ratio band ``[1-lambda, 1/(1-lambda)]``."""
    if not 0.0 < lam < 1.0:
        raise PrivacyParameterError("lambda must lie strictly in (0, 1)")
    return 1.0 - lam, 1.0 / (1.0 - lam)


def ratios_within_band(posterior: np.ndarray, prior: np.ndarray,
                       lam: float, tol: float = 1e-12) -> bool:
    """Whether every posterior/prior ratio lies inside the band.

    ``posterior`` is ``(n, gamma)`` or ``(gamma,)``; ``prior`` broadcasts
    against it.  A tiny ``tol`` absorbs floating-point noise at the band
    edges (exact-arithmetic answers sit exactly on them).
    """
    lo, hi = ratio_band(lam)
    ratios = np.asarray(posterior, dtype=float) / np.asarray(prior, dtype=float)
    return bool(np.all(ratios >= lo - tol) and np.all(ratios <= hi + tol))


def s_lambda(posterior: np.ndarray, prior: np.ndarray, lam: float) -> int:
    """The paper's ``S_lambda`` indicator: 1 when all ratios are in band."""
    return 1 if ratios_within_band(posterior, prior, lam) else 0


def offending_cells(posterior: np.ndarray, prior: np.ndarray,
                    lam: float, tol: float = 1e-12) -> np.ndarray:
    """Boolean mask of (element, bucket) cells violating the band.

    Useful for diagnostics and for attackers that target the weakest cell.
    """
    lo, hi = ratio_band(lam)
    ratios = np.asarray(posterior, dtype=float) / np.asarray(prior, dtype=float)
    return (ratios < lo - tol) | (ratios > hi + tol)


def band_margin(posterior: np.ndarray, prior: np.ndarray) -> float:
    """How far the worst posterior/prior ratio strays from 1, in log space.

    ``max |log(posterior / prior)|`` over all cells, with a zeroed
    posterior bucket counting as infinitely disclosive (``inf``).  The
    adversarial workload search uses this as its fitness signal: a larger
    margin means the answered history pushed some ratio closer to (or
    past) the edge of the ``lambda`` band, even when no breach occurred.
    """
    ratios = np.asarray(posterior, dtype=float) / np.asarray(prior, dtype=float)
    if np.any(ratios <= 0.0):
        return float("inf")
    return float(np.max(np.abs(np.log(ratios))))
