"""Privacy definitions: compromise notions and the privacy game (§2.2).

* :mod:`~repro.privacy.intervals` — the grid ``I`` of ``gamma`` equal
  buckets over ``[alpha, beta]``;
* :mod:`~repro.privacy.posterior` — closed-form posterior bucket
  probabilities for max-synopsis predicates (the math inside Algorithm 1);
* :mod:`~repro.privacy.compromise` — the predicates ``S_{lambda,i,I}`` and
  ``S_lambda`` for partial disclosure, plus ratio-band helpers;
* :mod:`~repro.privacy.game` — the ``(lambda, gamma, T)``-privacy game
  harness used to measure whether an auditor is ``(lambda, delta, gamma,
  T)``-private against a given attacker.
"""

from .compromise import band_margin, ratio_band, ratios_within_band, s_lambda
from .game import (
    GameResult,
    PrivacyGame,
    make_max_posterior_oracle,
    make_maxmin_posterior_oracle,
    make_sum_posterior_oracle,
)
from .intervals import IntervalGrid
from .posterior import max_predicate_bucket_probabilities, uniform_prior

__all__ = [
    "IntervalGrid",
    "GameResult",
    "PrivacyGame",
    "band_margin",
    "make_max_posterior_oracle",
    "make_maxmin_posterior_oracle",
    "make_sum_posterior_oracle",
    "max_predicate_bucket_probabilities",
    "uniform_prior",
    "ratio_band",
    "ratios_within_band",
    "s_lambda",
]
