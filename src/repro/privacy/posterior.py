"""Closed-form posterior bucket probabilities for max predicates (§3.1).

For data drawn uniformly (duplicate-free) from ``[0, 1]^n``, the posterior of
an element given the max synopsis ``B_max`` depends only on the single
predicate containing it (each element occurs in at most one predicate):

* ``x in S`` with ``[max(S) = M]`` — uniform on ``[0, M)`` with probability
  ``1 - 1/|S|``, plus a point mass ``1/|S|`` at ``M``;
* ``x in S`` with ``[max(S) < M]`` — uniform on ``[0, M)``;
* free — uniform on ``[0, 1]``.

These are the quantities Algorithm 1 compares against the prior ``1/gamma``.
The formulas generalise to any range ``[low, high]`` by rescaling; this
module works on the grid's own range.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import PrivacyParameterError
from ..synopsis.predicates import SynopsisPredicate
from .intervals import IntervalGrid


def uniform_prior(grid: IntervalGrid) -> np.ndarray:
    """Prior bucket probabilities (uniform data): ``1/gamma`` each."""
    return np.full(grid.gamma, grid.prior)


def max_predicate_bucket_probabilities(
    grid: IntervalGrid,
    predicate: Optional[SynopsisPredicate],
) -> np.ndarray:
    """Posterior ``Pr{x in I_j | B_max}`` for an element of ``predicate``.

    ``predicate=None`` means the element is free (posterior = prior).
    Returns a length-``gamma`` vector (1-based bucket ``j`` at index
    ``j - 1``).
    """
    gamma = grid.gamma
    if predicate is None:
        return uniform_prior(grid)
    if not predicate.is_max:
        raise PrivacyParameterError("expected a max-direction predicate")
    m_val = predicate.value
    if not grid.low < m_val <= grid.high:
        raise PrivacyParameterError(
            f"predicate value {m_val} outside ({grid.low}, {grid.high}]"
        )
    # Work in grid units: scaled position of M in (0, gamma].
    scaled = (m_val - grid.low) / (grid.high - grid.low) * gamma
    t = grid.containing(m_val)  # 1-based containing bucket, ceil(M * gamma)
    probs = np.zeros(gamma)
    point_mass = 1.0 / predicate.size if predicate.equality else 0.0
    density_mass = 1.0 - point_mass  # mass spread uniformly over [low, M)
    y = density_mass / scaled  # mass per full bucket left of M
    if t > 1:
        probs[: t - 1] = y
    # Containing bucket: partial uniform part plus the point mass at M.
    probs[t - 1] = y * (scaled - t + 1) + point_mass
    return probs


def general_prior(grid: IntervalGrid, distribution) -> np.ndarray:
    """Prior bucket probabilities under an arbitrary data distribution."""
    return np.array([
        distribution.interval_probability(float(grid.edges[j]),
                                          float(grid.edges[j + 1]))
        for j in range(grid.gamma)
    ])


def max_predicate_bucket_probabilities_general(
    grid: IntervalGrid,
    predicate: Optional[SynopsisPredicate],
    distribution,
) -> np.ndarray:
    """Posterior bucket probabilities under a general i.i.d. distribution.

    The paper's §3.1 closed form extends verbatim: by exchangeability the
    witness of ``[max(S) = M]`` is uniform over ``S`` (point mass ``1/|S|``
    at ``M``), and non-witnesses follow the distribution truncated below
    ``M``.  With the uniform distribution this coincides with
    :func:`max_predicate_bucket_probabilities` (property-tested).
    """
    if predicate is None:
        return general_prior(grid, distribution)
    if not predicate.is_max:
        raise PrivacyParameterError("expected a max-direction predicate")
    m_val = predicate.value
    if not grid.low < m_val <= grid.high:
        raise PrivacyParameterError(
            f"predicate value {m_val} outside ({grid.low}, {grid.high}]"
        )
    point_mass = 1.0 / predicate.size if predicate.equality else 0.0
    density_mass = 1.0 - point_mass
    probs = np.array([
        density_mass * distribution.truncated_interval_probability(
            float(grid.edges[j]), float(grid.edges[j + 1]), m_val
        )
        for j in range(grid.gamma)
    ])
    probs[grid.containing(m_val) - 1] += point_mass
    return probs


def max_synopsis_posterior_matrix(grid: IntervalGrid, synopsis) -> np.ndarray:
    """Posterior bucket probabilities for every element (``n x gamma``).

    ``synopsis`` is a max-direction
    :class:`~repro.synopsis.extreme_synopsis.ExtremeSynopsis`.
    """
    rows = []
    for i in range(synopsis.n):
        pred = synopsis.predicate_of(i)
        rows.append(max_predicate_bucket_probabilities(grid, pred))
    return np.vstack(rows)
