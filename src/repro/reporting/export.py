"""CSV export of experiment series (for external plotting).

The bench harness prints ASCII; for publication-quality figures the raw
series export to CSV and load anywhere.  The CLI's ``fig*`` commands accept
``--out-csv`` and route through these writers.
"""

from __future__ import annotations

import csv
from typing import Mapping, Sequence


def write_series_csv(path: str, series: Mapping[str, Sequence[float]],
                     index_name: str = "step") -> int:
    """Write named equal-length series as CSV columns; returns row count.

    Shorter series are padded with empty cells so ragged collections export
    cleanly.
    """
    if not series:
        raise ValueError("no series to write")
    # audit: DET003 -- CSV column order follows the caller's deterministic
    # dict insertion order; sorting would scramble the published layout
    names = list(series)
    length = max(len(series[name]) for name in names)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([index_name] + names)
        for row in range(length):
            cells = [row + 1]
            for name in names:
                values = series[name]
                cells.append(values[row] if row < len(values) else "")
            writer.writerow(cells)
    return length


def write_table_csv(path: str, headers: Sequence[str],
                    rows: Sequence[Sequence]) -> int:
    """Write a simple table as CSV; returns the number of data rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return len(rows)
