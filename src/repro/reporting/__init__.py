"""ASCII reporting for benchmark output (tables and simple line plots)."""

from .ascii_plots import ascii_plot
from .tables import format_table

__all__ = ["ascii_plot", "format_table"]
