"""Minimal ASCII line plots so benches can show curve *shapes* inline."""

from __future__ import annotations

from typing import Sequence


def ascii_plot(values: Sequence[float], width: int = 72, height: int = 12,
               title: str = "", y_label: str = "") -> str:
    """Render a series as a fixed-size ASCII chart (row 0 = max value)."""
    if len(values) == 0:
        return "(empty series)"
    n = len(values)
    xs = [int(i * (n - 1) / max(1, width - 1)) for i in range(min(width, n))]
    series = [float(values[i]) for i in xs]
    lo, hi = min(series), max(series)
    span = hi - lo or 1.0
    rows = []
    for level in range(height, -1, -1):
        threshold = lo + span * level / height
        line = "".join(
            "*" if v >= threshold - span / (2 * height) else " "
            for v in series
        )
        label = f"{threshold:8.3f} |" if level in (0, height) else "         |"
        rows.append(label + line)
    header = f"{title}\n" if title else ""
    footer = f"         +{'-' * len(series)}\n"
    axis = f"          1 .. {n} ({y_label})" if y_label else f"          1 .. {n}"
    return header + "\n".join(rows) + "\n" + footer + axis
